"""Probabilistic plan execution (paper Section 3.2, "Execution" step).

Given an :class:`~repro.core.plan.ExecutionPlan`, an executor walks every
group and

1. retrieves each tuple with probability ``R_a`` (charging ``o_r``),
2. evaluates each retrieved tuple with probability ``E_a / R_a`` (charging
   ``o_e``); evaluated tuples are returned only when the UDF passes,
   unevaluated retrieved tuples are returned unconditionally,
3. skips tuples that were already evaluated during sampling — their positive
   members are added to the output for free, exactly as Section 4.2 allows.

Three backends implement this contract:

* :class:`PlanExecutor` — the paper-faithful tuple-at-a-time reference:
  python loops, one ledger charge per tuple, one UDF call per evaluated row;
* :class:`BatchExecutor` — the vectorised default: one NumPy pass per group
  and one bulk :meth:`~repro.db.udf.UserDefinedFunction.evaluate_rows` call;
* :class:`~repro.core.parallel.ParallelBatchExecutor` — the sharded,
  thread-parallel scale-out backend.  It uses a *different* (counter-based,
  position-addressable) coin discipline so its results are invariant to
  shard layout and worker count; seeds are not comparable across the two
  disciplines, only within each.

Shared coin discipline
----------------------

Both backends consume the random stream identically, so for a fixed seed
they produce *exactly* the same returned row ids and ledger counts — the
differential property tests in ``tests/properties`` pin this.  Per group, in
:attr:`GroupIndex.values` order:

* ``R_a <= 0``: the group is skipped, no coins drawn;
* retrieval coins: none when ``R_a >= 1`` (every candidate retrieved),
  otherwise one uniform per candidate tuple in row order;
* evaluation coins: none when ``E_a/R_a <= 0`` (nothing evaluated) or
  ``E_a/R_a >= 1`` (every retrieved tuple evaluated), otherwise one uniform
  per *retrieved* tuple in row order.

Each tuple still sees an independent Bernoulli trial — the discipline only
fixes where its coin sits in the stream (numpy's block and scalar ``random``
draws are stream-identical), which is what makes a vectorised backend
bit-compatible with the serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.core.plan import ExecutionPlan
from repro.db.index import GroupIndex
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience.deadline import check_deadline
from repro.sampling.sampler import SampleOutcome
from repro.stats.random import RandomState, SeedLike, as_random_state


@dataclass
class GroupExecutionCounts:
    """Per-group bookkeeping mirroring the paper's R+/R-/E+/E- quantities."""

    retrieved_correct: int = 0
    retrieved_incorrect: int = 0
    evaluated_correct: int = 0
    evaluated_incorrect: int = 0
    returned: int = 0

    @property
    def retrieved(self) -> int:
        """Total retrieved tuples in the group."""
        return self.retrieved_correct + self.retrieved_incorrect

    @property
    def evaluated(self) -> int:
        """Total evaluated tuples in the group."""
        return self.evaluated_correct + self.evaluated_incorrect


@dataclass
class ExecutionResult:
    """Outcome of executing a plan.

    ``returned_row_ids`` is a python list from the serial backends and a
    numpy ``intp`` array from the parallel backend (which never materialises
    per-row python ints on its critical path); both iterate, index, ``len()``
    and set-convert identically.
    """

    returned_row_ids: Union[List[int], np.ndarray]
    ledger: CostLedger
    group_counts: Dict[Hashable, GroupExecutionCounts] = field(default_factory=dict)

    @cached_property
    def returned_set(self) -> FrozenSet[int]:
        """Returned row ids as a read-only set (built once, then cached)."""
        ids = self.returned_row_ids
        if isinstance(ids, np.ndarray):
            return frozenset(ids.tolist())  # C-level python-int conversion
        return frozenset(ids)

    @property
    def total_cost(self) -> float:
        """Total charged cost (sampling included if it used the same ledger)."""
        return self.ledger.total_cost

    @property
    def evaluations(self) -> int:
        """Number of UDF evaluations charged to the ledger."""
        return self.ledger.evaluated_count

    @property
    def retrievals(self) -> int:
        """Number of tuple retrievals charged to the ledger."""
        return self.ledger.retrieved_count


class ExecutorBackend(Protocol):
    """Protocol shared by plan-execution backends.

    :class:`BatchExecutor` is the vectorised default;
    :class:`PlanExecutor` is the paper-faithful tuple-at-a-time reference
    kept for differential testing.  Strategies accept any implementation via
    their ``executor_factory`` hook, so the same pipeline can run on either.
    """

    def execute(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        plan: ExecutionPlan,
        ledger: CostLedger,
        sample_outcome: Optional[SampleOutcome] = None,
    ) -> ExecutionResult:  # pragma: no cover - protocol definition
        """Run ``plan`` over every group of ``index``, charging ``ledger``."""
        ...


@runtime_checkable
class ExecutorAware(Protocol):
    """Strategies that accept an injected plan-execution backend.

    A strategy is ``ExecutorAware`` when it exposes an ``executor_factory``
    attribute: a callable building its :class:`ExecutorBackend` from the
    per-query :class:`~repro.stats.random.RandomState` (or ``None`` for the
    strategy's default).  The serving layer *requires* this protocol before
    injecting its configured backend — an explicit ``isinstance`` check
    instead of ``hasattr`` poking, so a strategy spelling the attribute
    differently fails loudly at service construction rather than silently
    running serial.
    """

    executor_factory: Optional[Callable[[RandomState], "ExecutorBackend"]]


def _sampled_positives(
    sample_outcome: Optional[SampleOutcome],
) -> tuple[Dict[Hashable, np.ndarray], List[int]]:
    """Per-group already-sampled row-id arrays plus the free positive output."""
    sampled_ids: Dict[Hashable, np.ndarray] = {}
    returned: List[int] = []
    if sample_outcome is not None:
        for key, sample in sample_outcome.samples.items():
            if sample.sampled_row_ids:
                sampled_ids[key] = np.asarray(sample.sampled_row_ids, dtype=np.intp)
            returned.extend(int(r) for r in sample.positive_row_ids)
    return sampled_ids, returned


class PlanExecutor:
    """Tuple-at-a-time reference executor (paper-faithful accounting).

    Retrieval and evaluation are charged tuple by tuple and every evaluated
    row goes through the per-row UDF entry point, exactly as the paper's
    cost model narrates execution.  Use :class:`BatchExecutor` (the default
    everywhere) for speed; this backend exists to keep it honest.
    """

    def __init__(self, random_state: SeedLike = None):
        self.random_state: RandomState = as_random_state(random_state)

    def execute(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        plan: ExecutionPlan,
        ledger: CostLedger,
        sample_outcome: Optional[SampleOutcome] = None,
    ) -> ExecutionResult:
        """Run ``plan`` over every group of ``index``.

        ``sample_outcome`` (when provided) identifies tuples whose UDF value
        was already paid for during sampling: they are excluded from the
        probabilistic pass and their positive members join the output
        directly.
        """
        _metrics.counter("repro_executor_runs_total", backend="serial").inc()
        # Serial executors attribute their ledger advance to the *current*
        # trace span (the pipeline's execute step).  The parallel backend
        # instead attributes work to its per-shard child spans, so each
        # charge appears on exactly one span either way.
        active_span = _trace.current_span()
        ledger_before = (
            (ledger.retrieved_count, ledger.evaluated_count)
            if active_span is not None
            else None
        )
        sampled_ids, returned = _sampled_positives(sample_outcome)
        group_counts: Dict[Hashable, GroupExecutionCounts] = {}

        for key, row_ids in index.items():
            # Cooperative cancellation before this group's charges: an
            # expired request never pays for further UDF work.
            check_deadline("execute")
            decision = plan.decision(key)
            counts = GroupExecutionCounts()
            group_counts[key] = counts
            retrieve_probability = decision.retrieve_probability
            conditional_evaluate = decision.conditional_evaluate_probability
            if retrieve_probability <= 0.0:
                continue
            already = sampled_ids.get(key)
            already_set = set(already.tolist()) if already is not None else ()

            # Phase 1 — one retrieval coin per candidate tuple, in row order
            # (no coins when retrieval is certain; see the coin discipline).
            retrieved: List[int] = []
            for row_id in row_ids:
                row_id = int(row_id)
                if row_id in already_set:
                    continue
                if (
                    retrieve_probability >= 1.0
                    or self.random_state.random() < retrieve_probability
                ):
                    retrieved.append(row_id)

            # Phase 2 — retrieve/evaluate tuple by tuple, charging as we go.
            for row_id in retrieved:
                ledger.charge_retrieval()
                if conditional_evaluate <= 0.0:
                    evaluate = False
                elif conditional_evaluate >= 1.0:
                    evaluate = True
                else:
                    evaluate = self.random_state.random() < conditional_evaluate
                if evaluate:
                    ledger.charge_evaluation()
                    outcome = udf.evaluate_row(table, row_id)
                    if outcome:
                        counts.evaluated_correct += 1
                        counts.retrieved_correct += 1
                        counts.returned += 1
                        returned.append(row_id)
                    else:
                        counts.evaluated_incorrect += 1
                        counts.retrieved_incorrect += 1
                else:
                    # Returned without verification; correctness is unknown to
                    # the algorithm (the counts split is filled by auditing).
                    counts.returned += 1
                    returned.append(row_id)

        if active_span is not None:
            active_span.add("retrievals", ledger.retrieved_count - ledger_before[0])
            active_span.add("udf_evals", ledger.evaluated_count - ledger_before[1])
        return ExecutionResult(
            returned_row_ids=returned,
            ledger=ledger,
            group_counts=group_counts,
        )


class BatchExecutor:
    """Vectorised executor: one NumPy pass and one bulk UDF call per group.

    The default backend for :class:`~repro.core.pipeline.IntelSample`,
    :class:`~repro.core.pipeline.OptimalOracle` and the serving layer.
    Thanks to the shared coin discipline it is *seed-for-seed identical* to
    :class:`PlanExecutor`: same returned row ids, same ledger counts.  The
    observable differences are performance and charging granularity — the
    ledger is charged in per-group blocks, so a hard budget stops a group
    before any of its UDF work happens instead of mid-group.

    ``free_memoized=True`` switches the ledger accounting to serving
    semantics: rows whose UDF value is already memoised are not re-charged,
    mirroring a production system that never pays twice for the same
    expensive predicate.  The default (``False``) keeps the paper's
    accounting, where every execution-phase evaluation is charged.
    """

    def __init__(self, random_state: SeedLike = None, free_memoized: bool = False):
        self.random_state: RandomState = as_random_state(random_state)
        self.free_memoized = free_memoized

    def execute(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        plan: ExecutionPlan,
        ledger: CostLedger,
        sample_outcome: Optional[SampleOutcome] = None,
    ) -> ExecutionResult:
        """Run ``plan`` over every group of ``index`` (vectorised)."""
        _metrics.counter("repro_executor_runs_total", backend="batch").inc()
        # See PlanExecutor.execute: serial backends put their ledger advance
        # on the current trace span.
        active_span = _trace.current_span()
        ledger_before = (
            (ledger.retrieved_count, ledger.evaluated_count)
            if active_span is not None
            else None
        )
        sampled_ids, returned = _sampled_positives(sample_outcome)
        group_counts: Dict[Hashable, GroupExecutionCounts] = {}

        rng = self.random_state.generator
        for key, rows in index.items():
            # Cooperative cancellation before this group's charges (the
            # coin draws below consume no stream positions when skipped
            # mid-loop — the request is abandoned wholesale, not resumed).
            check_deadline("execute")
            decision = plan.decision(key)
            counts = GroupExecutionCounts()
            group_counts[key] = counts
            retrieve_probability = decision.retrieve_probability
            conditional_evaluate = decision.conditional_evaluate_probability
            if retrieve_probability <= 0.0:
                continue

            already = sampled_ids.get(key)
            if already is not None:
                candidates = rows[~np.isin(rows, already)]
            else:
                candidates = rows
            if candidates.size == 0:
                continue

            # One retrieval coin per candidate tuple, drawn in a single block.
            if retrieve_probability >= 1.0:
                retrieved = candidates
            else:
                retrieved = candidates[rng.random(candidates.size) < retrieve_probability]
            if retrieved.size == 0:
                continue
            ledger.charge_retrieval(int(retrieved.size))

            if conditional_evaluate <= 0.0:
                counts.returned += int(retrieved.size)
                returned.extend(int(r) for r in retrieved)
                continue

            if conditional_evaluate >= 1.0:
                evaluate_mask = np.ones(retrieved.size, dtype=bool)
            else:
                evaluate_mask = rng.random(retrieved.size) < conditional_evaluate
            to_evaluate = retrieved[evaluate_mask]

            # Keep every retrieved-but-unevaluated row; evaluated rows are
            # kept only when the UDF passes.  ``keep_mask`` preserves the
            # group's row order in the output, matching the serial backend.
            keep_mask = ~evaluate_mask
            if to_evaluate.size:
                # Charge before evaluating (the serial backend's order), so a
                # hard budget stops the batch before any UDF work happens and
                # no un-paid-for values land in the memo cache.
                if self.free_memoized:
                    charge = int(to_evaluate.size) - int(
                        udf.memoized_mask(to_evaluate).sum()
                    )
                else:
                    charge = int(to_evaluate.size)
                if charge:
                    ledger.charge_evaluation(charge)
                outcomes = udf.evaluate_rows(table, to_evaluate)
                positives = int(outcomes.sum())
                negatives = int(to_evaluate.size) - positives
                counts.evaluated_correct += positives
                counts.retrieved_correct += positives
                counts.evaluated_incorrect += negatives
                counts.retrieved_incorrect += negatives
                counts.returned += positives
                keep_mask = keep_mask.copy()
                keep_mask[np.flatnonzero(evaluate_mask)] = outcomes

            unevaluated = int(retrieved.size) - int(to_evaluate.size)
            counts.returned += unevaluated
            returned.extend(int(r) for r in retrieved[keep_mask])

        if active_span is not None:
            active_span.add("retrievals", ledger.retrieved_count - ledger_before[0])
            active_span.add("udf_evals", ledger.evaluated_count - ledger_before[1])
        return ExecutionResult(
            returned_row_ids=returned,
            ledger=ledger,
            group_counts=group_counts,
        )
