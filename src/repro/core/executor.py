"""Probabilistic plan execution (paper Section 3.2, "Execution" step).

Given an :class:`~repro.core.plan.ExecutionPlan`, the executor walks every
group and, tuple by tuple,

1. retrieves the tuple with probability ``R_a`` (charging ``o_r``),
2. if retrieved, evaluates it with probability ``E_a / R_a`` (charging
   ``o_e``); evaluated tuples are returned only when the UDF passes,
   unevaluated retrieved tuples are returned unconditionally,
3. skips tuples that were already evaluated during sampling — their positive
   members are added to the output for free, exactly as Section 4.2 allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Protocol, Set

from repro.core.plan import ExecutionPlan
from repro.db.index import GroupIndex
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.sampling.sampler import SampleOutcome
from repro.stats.random import RandomState, SeedLike, as_random_state


@dataclass
class GroupExecutionCounts:
    """Per-group bookkeeping mirroring the paper's R+/R-/E+/E- quantities."""

    retrieved_correct: int = 0
    retrieved_incorrect: int = 0
    evaluated_correct: int = 0
    evaluated_incorrect: int = 0
    returned: int = 0

    @property
    def retrieved(self) -> int:
        """Total retrieved tuples in the group."""
        return self.retrieved_correct + self.retrieved_incorrect

    @property
    def evaluated(self) -> int:
        """Total evaluated tuples in the group."""
        return self.evaluated_correct + self.evaluated_incorrect


@dataclass
class ExecutionResult:
    """Outcome of executing a plan."""

    returned_row_ids: List[int]
    ledger: CostLedger
    group_counts: Dict[Hashable, GroupExecutionCounts] = field(default_factory=dict)

    @property
    def returned_set(self) -> Set[int]:
        """Returned row ids as a set."""
        return set(self.returned_row_ids)

    @property
    def total_cost(self) -> float:
        """Total charged cost (sampling included if it used the same ledger)."""
        return self.ledger.total_cost

    @property
    def evaluations(self) -> int:
        """Number of UDF evaluations charged to the ledger."""
        return self.ledger.evaluated_count

    @property
    def retrievals(self) -> int:
        """Number of tuple retrievals charged to the ledger."""
        return self.ledger.retrieved_count


class ExecutorBackend(Protocol):
    """Protocol shared by plan-execution backends.

    :class:`PlanExecutor` is the paper-faithful tuple-at-a-time reference
    backend; :class:`repro.serving.batch_executor.BatchExecutor` is the
    vectorised serving backend.  Strategies accept any implementation via
    their ``executor_factory`` hook, so the same pipeline can run on either.
    """

    def execute(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        plan: ExecutionPlan,
        ledger: CostLedger,
        sample_outcome: Optional[SampleOutcome] = None,
    ) -> ExecutionResult:  # pragma: no cover - protocol definition
        """Run ``plan`` over every group of ``index``, charging ``ledger``."""
        ...


class PlanExecutor:
    """Executes plans against a table, group index and UDF."""

    def __init__(self, random_state: SeedLike = None):
        self.random_state: RandomState = as_random_state(random_state)

    def execute(
        self,
        table: Table,
        index: GroupIndex,
        udf: UserDefinedFunction,
        plan: ExecutionPlan,
        ledger: CostLedger,
        sample_outcome: Optional[SampleOutcome] = None,
    ) -> ExecutionResult:
        """Run ``plan`` over every group of ``index``.

        ``sample_outcome`` (when provided) identifies tuples whose UDF value
        was already paid for during sampling: they are excluded from the
        probabilistic pass and their positive members join the output
        directly.
        """
        returned: List[int] = []
        group_counts: Dict[Hashable, GroupExecutionCounts] = {}

        sampled_ids: Dict[Hashable, Set[int]] = {}
        if sample_outcome is not None:
            for key, sample in sample_outcome.samples.items():
                sampled_ids[key] = set(sample.sampled_row_ids)
                returned.extend(sample.positive_row_ids)

        for key, row_ids in index.items():
            decision = plan.decision(key)
            counts = GroupExecutionCounts()
            group_counts[key] = counts
            already = sampled_ids.get(key, set())
            retrieve_probability = decision.retrieve_probability
            conditional_evaluate = decision.conditional_evaluate_probability
            if retrieve_probability <= 0.0:
                continue
            for row_id in row_ids:
                if row_id in already:
                    continue
                if self.random_state.random() >= retrieve_probability:
                    continue
                ledger.charge_retrieval()
                evaluate = (
                    conditional_evaluate > 0.0
                    and self.random_state.random() < conditional_evaluate
                )
                if evaluate:
                    ledger.charge_evaluation()
                    outcome = udf.evaluate_row(table, row_id)
                    if outcome:
                        counts.evaluated_correct += 1
                        counts.retrieved_correct += 1
                        counts.returned += 1
                        returned.append(row_id)
                    else:
                        counts.evaluated_incorrect += 1
                        counts.retrieved_incorrect += 1
                else:
                    # Returned without verification; correctness is unknown to
                    # the algorithm (the counts split is filled by auditing).
                    counts.returned += 1
                    returned.append(row_id)

        return ExecutionResult(
            returned_row_ids=returned,
            ledger=ledger,
            group_counts=group_counts,
        )
