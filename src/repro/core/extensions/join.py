"""Selection followed by a join (paper Sections 5 / 10.7.3).

When the selected table ``T`` is subsequently joined with ``T2``, a tuple of
``T`` that matches many ``T2`` tuples matters more to the precision and recall
of the *join output* than one that matches few.  The paper handles this by
creating a separate decision variable for every (correlated-column value,
join-column value) combination and weighting each combination's contribution
to the precision/recall constraints by its join fan-out ``n_j``, while the
cost stays per-``T``-tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.solvers.linear import LinearProgram, solve_linear_program
from repro.stats.hoeffding import hoeffding_bound

_ALPHA_CERTAIN = 1.0 - 1e-12


@dataclass(frozen=True)
class JoinGroup:
    """One (correlated value, join value) sub-group of the selected table.

    Attributes
    ----------
    key:
        The pair ``(a, j)`` identifying the sub-group.
    size:
        Number of ``T`` tuples in the sub-group (``t_{a,j}``).
    selectivity:
        Probability that a tuple of the sub-group satisfies the UDF
        (inherited from the correlated value ``a``).
    fanout:
        ``n_j`` — how many ``T2`` tuples each tuple of the sub-group joins
        with.
    """

    key: Hashable
    size: int
    selectivity: float
    fanout: float

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"size must be non-negative, got {self.size}")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {self.selectivity}")
        if self.fanout < 0:
            raise ValueError(f"fanout must be non-negative, got {self.fanout}")


@dataclass(frozen=True)
class JoinAwareSolution:
    """Plan plus expectations for a join-aware solve."""

    plan: ExecutionPlan
    expected_cost: float
    expected_output_correct: float
    expected_output_total: float


def solve_join_aware(
    groups: Sequence[JoinGroup],
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
) -> JoinAwareSolution:
    """Solve the join-weighted LP with Hoeffding margins.

    The returned plan's keys are the :class:`JoinGroup` keys (the ``(a, j)``
    pairs); executing it requires a group index built on the combination of
    the correlated column and the join column.
    """
    if not groups:
        return JoinAwareSolution(ExecutionPlan({}), 0.0, 0.0, 0.0)
    alpha = constraints.alpha
    beta = constraints.beta
    browsing = alpha >= _ALPHA_CERTAIN
    k = len(groups)

    # Hoeffding margins with per-tuple ranges scaled by the join fan-out.
    failure = 1.0 - constraints.rho
    precision_squared_range = sum(group.size * group.fanout**2 for group in groups)
    recall_squared_range = sum(
        group.size * (group.fanout * (1.0 - beta)) ** 2 for group in groups
    )
    precision_margin = (
        hoeffding_bound(precision_squared_range, failure)
        if 0.0 < alpha < _ALPHA_CERTAIN
        else 0.0
    )
    recall_margin = hoeffding_bound(recall_squared_range, failure)

    objective = [group.size * cost_model.retrieval_cost for group in groups] + [
        group.size * cost_model.evaluation_cost for group in groups
    ]
    program = LinearProgram(objective=objective)

    # Weighted recall.
    total_weighted_correct = sum(
        group.size * group.fanout * group.selectivity for group in groups
    )
    recall_row = [group.size * group.fanout * group.selectivity for group in groups] + [
        0.0
    ] * k
    program.add_ge(recall_row, beta * total_weighted_correct + recall_margin)

    # Weighted precision.
    if 0.0 < alpha < _ALPHA_CERTAIN:
        precision_row = [
            group.size
            * group.fanout
            * (group.selectivity * (1.0 - alpha) - (1.0 - group.selectivity) * alpha)
            for group in groups
        ] + [
            group.size * group.fanout * (1.0 - group.selectivity) * alpha
            for group in groups
        ]
        program.add_ge(precision_row, precision_margin)

    # Coupling constraints.
    for index in range(k):
        row = [0.0] * (2 * k)
        row[index] = 1.0
        row[k + index] = -1.0
        program.add_ge(row, 0.0)
        if browsing:
            program.add_ge([-value for value in row], 0.0)

    solution = solve_linear_program(program)
    decisions: Dict[Hashable, GroupDecision] = {}
    expected_correct = 0.0
    expected_total = 0.0
    for index, group in enumerate(groups):
        retrieve = min(1.0, max(0.0, float(solution.values[index])))
        evaluate = min(retrieve, max(0.0, float(solution.values[k + index])))
        if browsing:
            evaluate = retrieve
        decisions[group.key] = GroupDecision(retrieve=retrieve, evaluate=evaluate)
        expected_correct += group.size * group.fanout * group.selectivity * retrieve
        expected_total += group.size * group.fanout * (
            group.selectivity * retrieve
            + (1.0 - group.selectivity) * (retrieve - evaluate)
        )
    plan = ExecutionPlan(decisions)
    expected_cost = sum(
        group.size
        * (
            cost_model.retrieval_cost * decisions[group.key].retrieve_probability
            + cost_model.evaluation_cost * decisions[group.key].evaluate_probability
        )
        for group in groups
    )
    return JoinAwareSolution(
        plan=plan,
        expected_cost=expected_cost,
        expected_output_correct=expected_correct,
        expected_output_total=expected_total,
    )
