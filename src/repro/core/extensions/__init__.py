"""Extensions of the basic single-predicate problem (paper Section 5).

* :mod:`repro.core.extensions.budget` — fixed cost budget, maximize recall
  subject to a precision bound (Section 10.7.1),
* :mod:`repro.core.extensions.multi_predicate` — conjunctions of several UDF
  predicates with joint decision variables (Section 10.7.2),
* :mod:`repro.core.extensions.join` — a selection followed by a join, where
  tuples are weighted by their join fan-out (Section 10.7.3).
"""

from repro.core.extensions.budget import BudgetSolution, solve_budgeted_recall
from repro.core.extensions.join import JoinAwareSolution, JoinGroup, solve_join_aware
from repro.core.extensions.multi_predicate import (
    MultiPredicateGroup,
    MultiPredicatePlan,
    MultiPredicateSolution,
    PredicateAction,
    solve_multi_predicate,
)

__all__ = [
    "BudgetSolution",
    "solve_budgeted_recall",
    "MultiPredicateGroup",
    "MultiPredicatePlan",
    "MultiPredicateSolution",
    "PredicateAction",
    "solve_multi_predicate",
    "JoinGroup",
    "JoinAwareSolution",
    "solve_join_aware",
]
