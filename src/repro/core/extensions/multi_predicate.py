"""Conjunctions of multiple UDF predicates (paper Sections 5 / 10.7.2).

For a query ``WHERE f1(id) = 1 AND f2(id) = 1 ...`` the decision per group is
no longer a single (retrieve, evaluate) pair: for each UDF we can either
*assume* it holds (cheap, risks precision) or *evaluate* it (expensive,
certain), and we can also discard the group outright.  Precision and recall
are specified on the final output, so accuracy can be traded between
predicates.

Following the paper, we introduce one decision variable per mapping of UDFs to
decisions.  With ``m`` predicates a group has ``2^m`` retrieve-actions (each
predicate assumed or evaluated) plus the implicit discard action, giving an LP
whose size is linear in the number of groups and exponential only in the
(small) number of predicates.

Under the per-group independence model used throughout the paper, for action
``d`` (a tuple of per-predicate choices) on a tuple of group ``a``:

* the tuple is *returned* iff every evaluated predicate actually holds —
  probability ``prod_{i evaluated} s_{a,i}``,
* the tuple is returned **and** correct iff every predicate holds —
  probability ``prod_i s_{a,i}``,
* the cost is ``o_r + o_e * (#evaluated)``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core.constraints import CostModel, QueryConstraints
from repro.solvers.linear import LinearProgram, solve_linear_program
from repro.stats.hoeffding import hoeffding_precision_margin, hoeffding_recall_margin


class PredicateAction:
    """Per-predicate choices within a retrieve action."""

    ASSUME = "assume"
    EVALUATE = "evaluate"


@dataclass(frozen=True)
class MultiPredicateGroup:
    """One group's size and per-predicate selectivities."""

    key: Hashable
    size: int
    selectivities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"group size must be non-negative, got {self.size}")
        for value in self.selectivities:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"selectivities must be in [0, 1], got {value}")

    @property
    def num_predicates(self) -> int:
        """Number of UDF predicates."""
        return len(self.selectivities)

    @property
    def joint_selectivity(self) -> float:
        """Probability that a tuple satisfies every predicate."""
        return math.prod(self.selectivities)


@dataclass
class MultiPredicatePlan:
    """Per-group probability distribution over retrieve actions.

    ``action_probabilities[key][action]`` is the probability that a tuple of
    group ``key`` is handled with ``action`` (a tuple of per-predicate
    choices); the residual probability mass is the discard action.
    """

    action_probabilities: Dict[Hashable, Dict[Tuple[str, ...], float]] = field(
        default_factory=dict
    )

    def retrieve_probability(self, key: Hashable) -> float:
        """Total probability of retrieving a tuple from ``key``."""
        return sum(self.action_probabilities.get(key, {}).values())

    def action_probability(self, key: Hashable, action: Tuple[str, ...]) -> float:
        """Probability of one specific action."""
        return self.action_probabilities.get(key, {}).get(action, 0.0)


@dataclass(frozen=True)
class MultiPredicateSolution:
    """Plan plus expectations for a multi-predicate solve."""

    plan: MultiPredicatePlan
    expected_cost: float
    expected_returned_correct: float
    expected_returned_total: float


def _actions(num_predicates: int) -> List[Tuple[str, ...]]:
    return list(
        itertools.product(
            (PredicateAction.ASSUME, PredicateAction.EVALUATE), repeat=num_predicates
        )
    )


def solve_multi_predicate(
    groups: Sequence[MultiPredicateGroup],
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
) -> MultiPredicateSolution:
    """Solve the multi-predicate LP with Hoeffding margins.

    Returns a probabilistic plan over per-group actions meeting the precision
    and recall constraints (on the conjunction) with probability ``rho``.
    """
    if not groups:
        return MultiPredicateSolution(MultiPredicatePlan(), 0.0, 0.0, 0.0)
    num_predicates = groups[0].num_predicates
    if num_predicates == 0:
        raise ValueError("at least one predicate is required")
    if any(group.num_predicates != num_predicates for group in groups):
        raise ValueError("all groups must describe the same number of predicates")

    actions = _actions(num_predicates)
    total_tuples = sum(group.size for group in groups)
    total_correct = sum(group.size * group.joint_selectivity for group in groups)
    precision_margin = (
        hoeffding_precision_margin(total_tuples, constraints.rho)
        if 0.0 < constraints.alpha < 1.0
        else 0.0
    )
    recall_margin = hoeffding_recall_margin(
        total_tuples, constraints.beta, constraints.rho
    )

    # Variable layout: x[g * len(actions) + j] = probability of action j on group g.
    num_variables = len(groups) * len(actions)
    objective = []
    for group in groups:
        for action in actions:
            evaluations = sum(1 for choice in action if choice == PredicateAction.EVALUATE)
            per_tuple_cost = cost_model.retrieval_cost + cost_model.evaluation_cost * evaluations
            objective.append(group.size * per_tuple_cost)
    program = LinearProgram(objective=objective, bounds=[(0.0, 1.0)] * num_variables)

    def index_of(group_position: int, action_position: int) -> int:
        return group_position * len(actions) + action_position

    # Per-group total action probability at most 1.
    for group_position in range(len(groups)):
        row = [0.0] * num_variables
        for action_position in range(len(actions)):
            row[index_of(group_position, action_position)] = -1.0
        program.add_ge(row, -1.0)

    # Recall: expected correct returned >= beta * total_correct + margin.
    recall_row = [0.0] * num_variables
    for group_position, group in enumerate(groups):
        for action_position, _action in enumerate(actions):
            recall_row[index_of(group_position, action_position)] = (
                group.size * group.joint_selectivity
            )
    program.add_ge(recall_row, constraints.beta * total_correct + recall_margin)

    # Precision: correct_returned - alpha * returned >= margin.
    if 0.0 < constraints.alpha < 1.0:
        precision_row = [0.0] * num_variables
        for group_position, group in enumerate(groups):
            for action_position, action in enumerate(actions):
                returned_probability = math.prod(
                    group.selectivities[i]
                    for i, choice in enumerate(action)
                    if choice == PredicateAction.EVALUATE
                )
                correct_probability = group.joint_selectivity
                precision_row[index_of(group_position, action_position)] = group.size * (
                    correct_probability - constraints.alpha * returned_probability
                )
        program.add_ge(precision_row, precision_margin)

    solution = solve_linear_program(program)

    plan = MultiPredicatePlan()
    expected_correct = 0.0
    expected_returned = 0.0
    for group_position, group in enumerate(groups):
        per_action: Dict[Tuple[str, ...], float] = {}
        for action_position, action in enumerate(actions):
            probability = float(solution.values[index_of(group_position, action_position)])
            if probability <= 1e-12:
                continue
            per_action[action] = min(1.0, probability)
            returned_probability = math.prod(
                group.selectivities[i]
                for i, choice in enumerate(action)
                if choice == PredicateAction.EVALUATE
            )
            expected_returned += group.size * probability * returned_probability
            expected_correct += group.size * probability * group.joint_selectivity
        plan.action_probabilities[group.key] = per_action

    return MultiPredicateSolution(
        plan=plan,
        expected_cost=float(solution.objective_value),
        expected_returned_correct=expected_correct,
        expected_returned_total=expected_returned,
    )
