"""Budget-constrained objective (paper Sections 5 / 10.7.1).

Instead of minimizing cost under precision and recall bounds, the user fixes a
cost budget and wants to maximize the number of correct tuples returned
(equivalently the recall) while keeping the precision bound.  The paper notes
this is a minor rearrangement of the same machinery: cost becomes a
constraint, expected recall becomes the objective, and the Hoeffding precision
margin is kept so the precision guarantee still holds with probability
``rho``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.hoeffding_lp import compute_margins
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.solvers.linear import (
    InfeasibleProblemError,
    LinearProgram,
    solve_linear_program,
)

_ALPHA_CERTAIN = 1.0 - 1e-12


@dataclass(frozen=True)
class BudgetSolution:
    """Plan plus expectations for a budget-constrained solve."""

    plan: ExecutionPlan
    expected_correct_returned: float
    expected_cost: float
    budget: float

    @property
    def expected_recall(self) -> float:
        """Expected recall implied by the expected correct tuples returned."""
        return self._expected_recall

    # populated by the solver below (kept out of the frozen dataclass fields
    # so the public constructor stays small).
    _expected_recall: float = 0.0


def solve_budgeted_recall(
    model: SelectivityModel,
    precision_bound: float,
    rho: float,
    budget: float,
    cost_model: CostModel = CostModel(),
) -> BudgetSolution:
    """Maximize expected correct tuples returned under a hard cost budget.

    Parameters
    ----------
    model:
        Per-group sizes and (exact or estimated) selectivities.
    precision_bound:
        The precision lower bound ``alpha`` that must still hold with
        probability ``rho``.
    budget:
        Maximum allowed expected cost of retrievals plus evaluations.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    groups = model.groups
    k = len(groups)
    if k == 0:
        plan = ExecutionPlan({})
        return BudgetSolution(plan, 0.0, 0.0, budget, 1.0)

    constraints = QueryConstraints(alpha=precision_bound, beta=0.0, rho=rho)
    margins = compute_margins(model, constraints)
    alpha = precision_bound

    # Maximize sum_a t_a s_a R_a  ==  minimize the negation.
    objective = [-group.remaining * group.selectivity for group in groups] + [0.0] * k
    program = LinearProgram(objective=objective)

    # Precision constraint with its Hoeffding margin.
    if 0.0 < alpha < _ALPHA_CERTAIN:
        precision_row = [
            group.remaining * group.selectivity * (1.0 - alpha)
            - group.remaining * (1.0 - group.selectivity) * alpha
            for group in groups
        ] + [group.remaining * (1.0 - group.selectivity) * alpha for group in groups]
        program.add_ge(precision_row, margins.precision_margin)

    # Budget constraint: cost <= budget  ==  -cost >= -budget.
    cost_row = [-group.remaining * cost_model.retrieval_cost for group in groups] + [
        -group.remaining * cost_model.evaluation_cost for group in groups
    ]
    program.add_ge(cost_row, -budget)

    # Browsing case: evaluate everything retrieved.
    browsing = alpha >= _ALPHA_CERTAIN
    for index in range(k):
        row = [0.0] * (2 * k)
        row[index] = 1.0
        row[k + index] = -1.0
        program.add_ge(row, 0.0)
        if browsing:
            program.add_ge([-value for value in row], 0.0)

    try:
        solution = solve_linear_program(program)
    except InfeasibleProblemError:
        # A budget too small to absorb the precision safety margin leaves the
        # empty plan as the only safe answer: it returns nothing (precision 1
        # trivially) and spends nothing.
        empty = ExecutionPlan.discard_everything([group.key for group in groups])
        return BudgetSolution(
            plan=empty,
            expected_correct_returned=0.0,
            expected_cost=0.0,
            budget=budget,
            _expected_recall=0.0,
        )
    decisions = {}
    for index, group in enumerate(groups):
        retrieve = min(1.0, max(0.0, float(solution.values[index])))
        evaluate = min(retrieve, max(0.0, float(solution.values[k + index])))
        if browsing:
            evaluate = retrieve
        decisions[group.key] = GroupDecision(retrieve=retrieve, evaluate=evaluate)
    plan = ExecutionPlan(decisions)

    expected_correct = plan.expected_returned_correct(model)
    total_correct = sum(group.remaining * group.selectivity for group in groups)
    expected_recall = expected_correct / total_correct if total_correct > 0 else 1.0
    return BudgetSolution(
        plan=plan,
        expected_correct_returned=expected_correct,
        expected_cost=plan.expected_cost(model, cost_model, include_sampling=False),
        budget=budget,
        _expected_recall=expected_recall,
    )
