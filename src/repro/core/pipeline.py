"""End-to-end query evaluation strategies.

:class:`IntelSample` is the paper's main algorithm (Section 6.2): choose a
correlated column (real or virtual), sample to estimate group selectivities,
solve Convex Program 4.1 and execute the resulting probabilistic plan.
:class:`OptimalOracle` is the unrealistic "Optimal" baseline that is handed
the exact selectivities and only pays for execution.

Both implement the engine's evaluation-strategy protocol
(``run(table, query, ledger) -> QueryResult``) and also expose a direct
``answer(...)`` entry point for callers that do not want to go through the
query layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional

import numpy as np

from repro.core.bigreedy import solve_bigreedy
from repro.core.column_selection import (
    LabeledSample,
    build_virtual_column,
    draw_labeled_sample,
    select_correlated_column,
)
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.executor import BatchExecutor, ExecutorBackend
from repro.core.groups import SelectivityModel
from repro.core.plan import ExecutionPlan
from repro.core.sampling_program import solve_with_samples
from repro.db.engine import QueryResult
from repro.db.query import SelectQuery
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.obs import metrics as _metrics
from repro.obs.trace import span as _span
from repro.resilience.deadline import check_deadline
from repro.sampling.sampler import GroupSampler, SampleOutcome
from repro.sampling.schemes import SamplingScheme, TwoThirdPowerScheme
from repro.solvers.linear import InfeasibleProblemError
from repro.stats.random import RandomState, SeedLike, as_random_state


def _cost_model_from_ledger(ledger: CostLedger) -> CostModel:
    return CostModel(
        retrieval_cost=ledger.retrieval_cost,
        evaluation_cost=ledger.evaluation_cost,
    )


def _constraints_from_query(query: SelectQuery) -> QueryConstraints:
    return QueryConstraints(alpha=query.alpha, beta=query.beta, rho=query.rho)


def _probe_bulk_evaluator(
    executor_factory: Optional[Callable[[RandomState], ExecutorBackend]],
    udf: UserDefinedFunction,
):
    """The executor's shard fan-out for bulk UDF evaluation, if it has one.

    A throwaway, fixed-seed instance is built purely to read configuration —
    the real executor is still created (with its proper child stream) at the
    execution step, so the pipeline's random-stream consumption is unchanged
    whether or not the backend is parallel.  UDF outcomes are deterministic,
    so fanning sampling/labelling evaluations across shards alters wall-clock
    only, never statistics.
    """
    if executor_factory is None:
        return None
    probe = executor_factory(as_random_state(0))
    hook = getattr(probe, "bulk_evaluator", None)
    if callable(hook):
        return hook(udf)
    return None


def _udf_from_query(query: SelectQuery) -> UserDefinedFunction:
    predicates = query.udf_predicates
    if not predicates:
        raise ValueError("the query has no UDF predicate to optimize")
    if len(predicates) > 1:
        raise ValueError(
            "IntelSample handles a single UDF predicate; use "
            "repro.core.extensions.multi_predicate for conjunctions"
        )
    return predicates[0].udf


@dataclass
class IntelSampleReport:
    """Diagnostics attached to an Intel-Sample run."""

    correlated_column: str
    used_virtual_column: bool
    sample_size: int
    plan: ExecutionPlan
    model: SelectivityModel
    expected_cost: float
    used_fallback: bool
    column_costs: Optional[dict] = None
    # Serving hooks: the raw statistics a caching layer needs to amortise
    # repeated queries (see repro.serving).
    labeled: Optional[LabeledSample] = None
    sample_outcome: Optional[SampleOutcome] = None
    working_table: Optional[Table] = None


class IntelSample:
    """The paper's sampling-based approximate evaluation strategy.

    Parameters
    ----------
    sampling_scheme:
        How many tuples to sample per group; defaults to the paper's
        Two-Third-Power rule with ``num = 2.5 * alpha``.
    correlated_column:
        Fix the correlated column instead of searching for one.
    use_virtual_column:
        Build a logistic-regression virtual column (Section 4.4, second
        method) instead of choosing a real column.
    independent:
        Use the independent-groups convex program (default) rather than the
        unknown-correlations variant.
    column_sample_fraction:
        Fraction of rows labelled up-front for column selection / virtual
        column training (the paper uses 1%).
    executor_factory:
        Optional factory mapping a :class:`RandomState` to an
        :class:`~repro.core.executor.ExecutorBackend`; defaults to the
        vectorised :class:`~repro.core.executor.BatchExecutor`.  Pass
        ``lambda rng: PlanExecutor(random_state=rng)`` to run on the
        tuple-at-a-time reference backend (seed-for-seed identical results,
        paper-faithful per-tuple charging).
    """

    def __init__(
        self,
        sampling_scheme: Optional[SamplingScheme] = None,
        correlated_column: Optional[str] = None,
        use_virtual_column: bool = False,
        num_buckets: int = 10,
        independent: bool = True,
        column_sample_fraction: float = 0.01,
        random_state: SeedLike = None,
        executor_factory: Optional[Callable[[RandomState], ExecutorBackend]] = None,
    ):
        self.sampling_scheme = sampling_scheme
        self.correlated_column = correlated_column
        self.use_virtual_column = use_virtual_column
        self.num_buckets = num_buckets
        self.independent = independent
        self.column_sample_fraction = column_sample_fraction
        self.random_state: RandomState = as_random_state(random_state)
        self.executor_factory = executor_factory

    # -- engine strategy protocol ---------------------------------------------------
    def run(self, table: Table, query: SelectQuery, ledger: CostLedger) -> QueryResult:
        """Evaluate ``query`` approximately (engine strategy entry point)."""
        constraints = _constraints_from_query(query)
        udf = _udf_from_query(query)
        column = query.correlated_column or self.correlated_column
        return self.answer(table, udf, constraints, ledger, correlated_column=column)

    # -- direct API -------------------------------------------------------------------
    def answer(
        self,
        table: Table,
        udf: UserDefinedFunction,
        constraints: QueryConstraints,
        ledger: Optional[CostLedger] = None,
        correlated_column: Optional[str] = None,
        cached_labeled: Optional[LabeledSample] = None,
        cached_outcomes: Optional[Mapping[str, SampleOutcome]] = None,
    ) -> QueryResult:
        """Run the full pipeline and return the approximate result.

        ``cached_labeled`` and ``cached_outcomes`` inject statistics whose
        UDF cost was paid by an earlier query (see
        :class:`repro.serving.stats_cache.StatisticsCache`): an injected
        labelled sample skips the up-front labelling draw, and an injected
        per-column :class:`SampleOutcome` counts toward the sampling
        allocation so only the shortfall (usually nothing) is sampled fresh.
        """
        ledger = ledger if ledger is not None else CostLedger()
        cost_model = _cost_model_from_ledger(ledger)
        column = correlated_column or self.correlated_column
        udf_counters_before = udf.counter_snapshot()
        bulk_evaluator = _probe_bulk_evaluator(self.executor_factory, udf)

        labeled = cached_labeled if cached_labeled is not None else LabeledSample()
        column_costs = None
        used_virtual = False
        working_table = table

        # Step 0 — find a correlated column if none was designated.  Each
        # pipeline step runs inside a trace span (no-ops without an active
        # trace); serial steps pass the ledger so their span records the
        # exact work-counter delta they incurred.
        if column is None:
            with _span("column-selection", ledger=ledger) as section:
                if not labeled.size:
                    labeled = draw_labeled_sample(
                        table,
                        udf,
                        ledger,
                        fraction=self.column_sample_fraction,
                        random_state=self.random_state.child(),
                        bulk_evaluator=bulk_evaluator,
                    )
                if self.use_virtual_column:
                    exclude = [
                        name for name in ("record_id",) if table.schema.has_column(name)
                    ]
                    virtual = build_virtual_column(
                        table,
                        labeled,
                        num_buckets=self.num_buckets,
                        exclude_columns=exclude,
                        random_state=self.random_state.child(),
                    )
                    working_table = virtual.table
                    column = virtual.column_name
                    used_virtual = True
                else:
                    selection = select_correlated_column(
                        table,
                        labeled,
                        constraints,
                        cost_model,
                        exclude_columns=("record_id",),
                    )
                    column = selection.best_column
                    column_costs = selection.estimated_costs
                section.annotate("column", column)

        # Step 1 — group by the correlated column (shared cached index: the
        # serving layer and repeated queries reuse the same factorisation).
        with _span("group-index"):
            index = working_table.group_index(column)
        cached_outcome = (cached_outcomes or {}).get(column)
        if cached_outcome is not None:
            # A caching layer stores the merged outcome of earlier runs.  Any
            # labelled rows it does not already cover (e.g. a sample drawn
            # fresh this run) are folded in rather than discarded — their UDF
            # cost is paid, so they count as evidence and as sunk samples.
            prior = cached_outcome
            if labeled.size:
                covered = {
                    row_id
                    for sample in cached_outcome.samples.values()
                    for row_id in sample.sampled_row_ids
                }
                extra = LabeledSample(
                    outcomes={
                        row_id: outcome
                        for row_id, outcome in labeled.outcomes.items()
                        if row_id not in covered
                    }
                )
                if extra.size:
                    prior = cached_outcome.merge(extra.to_sample_outcome(index))
        else:
            prior = labeled.to_sample_outcome(index) if labeled.size else None

        # Step 2 — sample to estimate selectivities.  Every step boundary is
        # a cancellation point (the steps' own loops check again at finer
        # grain).
        check_deadline("pipeline")
        with _span("sampling", ledger=ledger) as section:
            scheme = self.sampling_scheme or TwoThirdPowerScheme(
                num=2.5 * constraints.alpha
            )
            allocation = scheme.allocate(index.group_sizes())
            if cached_outcome is not None:
                # Cached samples count toward the allocation: only the
                # shortfall is drawn (and paid for) fresh.
                allocation = {
                    key: max(
                        0,
                        int(requested)
                        - (
                            prior.samples[key].sample_size
                            if key in prior.samples
                            else 0
                        ),
                    )
                    for key, requested in allocation.items()
                }
            sampler = GroupSampler(random_state=self.random_state.child())
            new_outcome = sampler.sample(
                working_table,
                index,
                udf,
                allocation,
                ledger,
                already_sampled=prior,
                bulk_evaluator=bulk_evaluator,
            )
            outcome: SampleOutcome = (
                new_outcome if prior is None else prior.merge(new_outcome)
            )
            section.annotate("sampled", outcome.total_sampled)

        # Step 3 — solve Convex Program 4.1.  Since the PR-2 joint repair,
        # the solvers raise InfeasibleProblemError only when the margined
        # program genuinely has no solution (not merely because the greedy
        # ran out of evaluation headroom), so the exhaustive fallback is the
        # *only* remaining answer rather than a conservative default.
        used_fallback = False
        check_deadline("pipeline")
        with _span("solve", ledger=ledger) as section:
            _metrics.counter("repro_solver_calls_total", strategy="intel_sample").inc()
            try:
                solution = solve_with_samples(
                    index,
                    outcome,
                    constraints,
                    cost_model=cost_model,
                    independent=self.independent,
                )
                plan = solution.plan
                model = solution.model
                expected_cost = solution.expected_total_cost
                used_fallback = solution.used_fallback
            except InfeasibleProblemError:
                plan = ExecutionPlan.evaluate_everything(index.values)
                model = SelectivityModel.from_sample_outcome(index, outcome)
                expected_cost = plan.expected_cost(model, cost_model)
                used_fallback = True
            if used_fallback:
                section.annotate("used_fallback", True)

        # Step 4 — execute.  The span carries no ledger: the executor
        # attributes its own work — serial backends onto this span, the
        # parallel backend onto per-shard child spans — so no charge is
        # double-counted across the tree.
        check_deadline("pipeline")
        with _span("execute"):
            executor_rng = self.random_state.child()
            if self.executor_factory is not None:
                executor: ExecutorBackend = self.executor_factory(executor_rng)
            else:
                executor = BatchExecutor(random_state=executor_rng)
            result = executor.execute(
                working_table, index, udf, plan, ledger, sample_outcome=outcome
            )

        report = IntelSampleReport(
            correlated_column=column,
            used_virtual_column=used_virtual,
            sample_size=outcome.total_sampled,
            plan=plan,
            model=model,
            expected_cost=expected_cost,
            used_fallback=used_fallback,
            column_costs=column_costs,
            labeled=labeled,
            sample_outcome=outcome,
            working_table=working_table,
        )
        return QueryResult(
            row_ids=result.returned_row_ids,
            ledger=ledger,
            metadata={
                "strategy": "intel_sample",
                "report": report,
                "evaluations": ledger.evaluated_count,
                "retrievals": ledger.retrieved_count,
                "udf_cache": udf.counter_delta(udf_counters_before),
            },
        )


class OptimalOracle:
    """The "Optimal" baseline: exact selectivities handed to the LP for free.

    The oracle reads the true per-group selectivities without charging any
    cost (which no real system could do) and then pays only for executing the
    resulting BiGreedy plan.  It lower-bounds Intel-Sample's cost.
    """

    def __init__(
        self,
        correlated_column: Optional[str] = None,
        random_state: SeedLike = None,
        executor_factory: Optional[Callable[[RandomState], ExecutorBackend]] = None,
    ):
        self.correlated_column = correlated_column
        self.random_state: RandomState = as_random_state(random_state)
        self.executor_factory = executor_factory

    def run(self, table: Table, query: SelectQuery, ledger: CostLedger) -> QueryResult:
        """Engine strategy entry point."""
        constraints = _constraints_from_query(query)
        udf = _udf_from_query(query)
        column = query.correlated_column or self.correlated_column
        if column is None:
            raise ValueError("OptimalOracle requires an explicit correlated column")
        return self.answer(table, udf, constraints, ledger, correlated_column=column)

    def answer(
        self,
        table: Table,
        udf: UserDefinedFunction,
        constraints: QueryConstraints,
        ledger: Optional[CostLedger] = None,
        correlated_column: Optional[str] = None,
    ) -> QueryResult:
        """Solve with exact selectivities and execute the plan."""
        ledger = ledger if ledger is not None else CostLedger()
        cost_model = _cost_model_from_ledger(ledger)
        column = correlated_column or self.correlated_column
        if column is None:
            raise ValueError("OptimalOracle requires an explicit correlated column")
        index = table.group_index(column)

        # Peek at the ground truth without charging costs (unrealistic, by
        # design) — in oracle mode, so the peek leaves no trace in the UDF's
        # memo cache or counters that later accounting could mistake for
        # paid-for work.  The peek spans the whole table, so it fans across
        # shards when the backend is parallel (oracle mode is depth-counted
        # on the shared UDF object, which worker threads observe).
        bulk_evaluator = _probe_bulk_evaluator(self.executor_factory, udf)
        evaluate = bulk_evaluator if bulk_evaluator is not None else udf.evaluate_rows
        with _span("ground-truth-peek"):
            with udf.oracle_mode():
                outcomes = evaluate(table, table.row_ids)
        positives = np.flatnonzero(outcomes)
        model = SelectivityModel.from_ground_truth(index, positives)

        # BiGreedy attains the LP optimum on every feasible input, so the
        # oracle never needs a second opinion from the scipy LP: an
        # InfeasibleProblemError here means the margined LP itself has no
        # solution and evaluating everything is the only correct plan.
        used_fallback = False
        with _span("solve", ledger=ledger):
            _metrics.counter(
                "repro_solver_calls_total", strategy="optimal_oracle"
            ).inc()
            try:
                solution = solve_bigreedy(model, constraints, cost_model)
                plan = solution.plan
            except InfeasibleProblemError:
                plan = ExecutionPlan.evaluate_everything(index.values)
                used_fallback = True

        check_deadline("pipeline")
        with _span("execute"):
            executor_rng = self.random_state.child()
            if self.executor_factory is not None:
                executor: ExecutorBackend = self.executor_factory(executor_rng)
            else:
                executor = BatchExecutor(random_state=executor_rng)
            result = executor.execute(table, index, udf, plan, ledger)
        return QueryResult(
            row_ids=result.returned_row_ids,
            ledger=ledger,
            metadata={
                "strategy": "optimal_oracle",
                "plan": plan,
                "used_fallback": used_fallback,
                "evaluations": ledger.evaluated_count,
                "retrievals": ledger.retrieved_count,
            },
        )
