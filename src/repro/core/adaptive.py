"""Adaptive joint estimation and exploitation (paper Section 4.3).

Rather than fixing the sampling parameter ``num`` up-front, the adaptive
strategy grows it incrementally: after each round of additional sampling it
re-solves Convex Program 4.1 and records the *predicted* total cost (sunk
sampling cost plus the expected execution cost of the new plan).  The
predicted cost first falls, then rises once extra sampling stops paying for
itself; when it rises the strategy stops sampling and executes the best plan
found with everything sampled so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.executor import BatchExecutor, ExecutorBackend
from repro.core.groups import SelectivityModel
from repro.core.plan import ExecutionPlan
from repro.core.sampling_program import solve_with_samples
from repro.db.engine import QueryResult
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.sampling.adaptive import default_num_schedule
from repro.sampling.sampler import GroupSampler, SampleOutcome
from repro.sampling.schemes import TwoThirdPowerScheme
from repro.solvers.linear import InfeasibleProblemError
from repro.stats.random import RandomState, SeedLike, as_random_state


@dataclass(frozen=True)
class AdaptiveRound:
    """Diagnostics for one adaptive sampling round."""

    num: float
    total_sampled: int
    predicted_total_cost: float
    used_fallback: bool


@dataclass
class AdaptiveReport:
    """Diagnostics attached to an adaptive Intel-Sample run."""

    rounds: List[AdaptiveRound]
    chosen_num: float
    plan: ExecutionPlan
    model: SelectivityModel

    @property
    def num_rounds(self) -> int:
        """How many sampling rounds ran."""
        return len(self.rounds)


class AdaptiveIntelSample:
    """Intel-Sample with the adaptive ``num`` search of Section 4.3.

    Parameters
    ----------
    correlated_column:
        The correlated column to group by (the adaptive variant assumes the
        column is already known; combine with
        :func:`repro.core.column_selection.select_correlated_column` otherwise).
    num_schedule:
        Increasing candidate ``num`` values; defaults to
        ``{1, 2, ..., 8} * alpha``.
    patience:
        Number of consecutive predicted-cost increases tolerated before the
        search stops.
    executor_factory:
        Optional factory mapping a :class:`RandomState` to an
        :class:`~repro.core.executor.ExecutorBackend`; defaults to the
        vectorised :class:`~repro.core.executor.BatchExecutor` (pass
        ``lambda rng: PlanExecutor(random_state=rng)`` for the
        tuple-at-a-time reference backend).
    """

    def __init__(
        self,
        correlated_column: str,
        num_schedule: Optional[Sequence[float]] = None,
        patience: int = 1,
        independent: bool = True,
        random_state: SeedLike = None,
        executor_factory: Optional[Callable[[RandomState], ExecutorBackend]] = None,
    ):
        self.correlated_column = correlated_column
        self.num_schedule = list(num_schedule) if num_schedule is not None else None
        self.patience = patience
        self.independent = independent
        self.random_state: RandomState = as_random_state(random_state)
        self.executor_factory = executor_factory

    def answer(
        self,
        table: Table,
        udf: UserDefinedFunction,
        constraints: QueryConstraints,
        ledger: Optional[CostLedger] = None,
    ) -> QueryResult:
        """Run the adaptive pipeline and return the approximate result."""
        ledger = ledger if ledger is not None else CostLedger()
        cost_model = CostModel(
            retrieval_cost=ledger.retrieval_cost,
            evaluation_cost=ledger.evaluation_cost,
        )
        index = table.group_index(self.correlated_column)
        schedule = self.num_schedule or default_num_schedule(constraints.alpha)
        sampler = GroupSampler(random_state=self.random_state.child())

        outcome: Optional[SampleOutcome] = None
        rounds: List[AdaptiveRound] = []
        best_cost = float("inf")
        best_plan: Optional[ExecutionPlan] = None
        best_model: Optional[SelectivityModel] = None
        chosen_num = schedule[0]
        consecutive_rises = 0

        for num in schedule:
            allocation = TwoThirdPowerScheme(num=num).allocate(index.group_sizes())
            new_outcome = sampler.sample(
                table, index, udf, allocation, ledger, already_sampled=outcome
            )
            outcome = new_outcome if outcome is None else outcome.merge(new_outcome)
            used_fallback = False
            try:
                solution = solve_with_samples(
                    index,
                    outcome,
                    constraints,
                    cost_model=cost_model,
                    independent=self.independent,
                )
                predicted = solution.expected_total_cost
                plan = solution.plan
                model = solution.model
                used_fallback = solution.used_fallback
            except InfeasibleProblemError:
                model = SelectivityModel.from_sample_outcome(index, outcome)
                plan = ExecutionPlan.evaluate_everything(index.values)
                predicted = plan.expected_cost(model, cost_model)
                used_fallback = True
            rounds.append(
                AdaptiveRound(
                    num=num,
                    total_sampled=outcome.total_sampled,
                    predicted_total_cost=predicted,
                    used_fallback=used_fallback,
                )
            )
            if predicted < best_cost - 1e-9:
                best_cost = predicted
                best_plan = plan
                best_model = model
                chosen_num = num
                consecutive_rises = 0
            else:
                consecutive_rises += 1
                if consecutive_rises > self.patience:
                    break

        assert best_plan is not None and best_model is not None and outcome is not None
        executor_rng = self.random_state.child()
        if self.executor_factory is not None:
            executor: ExecutorBackend = self.executor_factory(executor_rng)
        else:
            executor = BatchExecutor(random_state=executor_rng)
        result = executor.execute(
            table, index, udf, best_plan, ledger, sample_outcome=outcome
        )
        report = AdaptiveReport(
            rounds=rounds,
            chosen_num=chosen_num,
            plan=best_plan,
            model=best_model,
        )
        return QueryResult(
            row_ids=result.returned_row_ids,
            ledger=ledger,
            metadata={
                "strategy": "adaptive_intel_sample",
                "report": report,
                "evaluations": ledger.evaluated_count,
                "retrievals": ledger.retrieved_count,
            },
        )
