"""Per-group statistics — the optimizer's view of the data.

Every optimizer in the paper consumes the same information: for each value
``a`` of the correlated attribute, the group size ``t_a`` plus whatever is
known about how many of its tuples satisfy the predicate.  Depending on the
regime that knowledge is

* exact counts ``C_a`` / ``W_a`` (perfect information, Section 3.1),
* an exact selectivity ``s_a`` (perfect selectivities, Section 3.2), or
* an estimated selectivity with variance ``(s_a, v_a)`` plus the sampling
  bookkeeping ``F_a`` / ``F_a^+`` (estimated selectivities, Sections 3.3/4).

:class:`GroupStatistics` carries all of it; :class:`SelectivityModel` is the
ordered collection the optimizers iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional

import numpy as np

from repro.db.index import GroupIndex
from repro.db.table import Table
from repro.sampling.sampler import SampleOutcome
from repro.stats.beta import BetaPosterior


@dataclass(frozen=True)
class GroupStatistics:
    """Everything an optimizer may know about one group.

    Attributes
    ----------
    key:
        The group's ``A`` value.
    size:
        ``t_a`` — number of tuples in the group (always known).
    selectivity:
        ``s_a`` — known or estimated probability that a tuple satisfies the
        predicate.
    variance:
        ``v_a`` — variance of the selectivity estimate (0 when the selectivity
        is known exactly).
    sampled:
        ``F_a`` — number of tuples already retrieved and evaluated.
    sampled_positives:
        ``F_a^+`` — how many of those satisfied the predicate.
    correct_count / incorrect_count:
        Exact ``C_a`` / ``W_a`` when available (perfect information only).
    """

    key: Hashable
    size: int
    selectivity: float
    variance: float = 0.0
    sampled: int = 0
    sampled_positives: int = 0
    correct_count: Optional[int] = None
    incorrect_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"group size must be non-negative, got {self.size}")
        if not 0.0 <= self.selectivity <= 1.0:
            raise ValueError(
                f"selectivity must be in [0, 1], got {self.selectivity} for group {self.key!r}"
            )
        if self.variance < 0:
            raise ValueError(f"variance must be non-negative, got {self.variance}")
        if not 0 <= self.sampled <= self.size:
            raise ValueError(
                f"sampled count {self.sampled} must be within [0, {self.size}]"
            )
        if not 0 <= self.sampled_positives <= self.sampled:
            raise ValueError(
                f"sampled positives {self.sampled_positives} exceed sampled {self.sampled}"
            )
        if self.correct_count is not None:
            if self.incorrect_count is None:
                raise ValueError("correct_count and incorrect_count must come together")
            if self.correct_count + self.incorrect_count != self.size:
                raise ValueError(
                    "correct_count + incorrect_count must equal the group size"
                )

    # -- derived quantities --------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Tuples not yet evaluated during sampling (``t_a - F_a``)."""
        return self.size - self.sampled

    @property
    def sampled_negatives(self) -> int:
        """Sampled tuples that failed the predicate (``F_a^-``)."""
        return self.sampled - self.sampled_positives

    @property
    def expected_correct(self) -> float:
        """Expected number of correct tuples in the group."""
        if self.correct_count is not None:
            return float(self.correct_count)
        return self.sampled_positives + self.remaining * self.selectivity

    @property
    def has_exact_counts(self) -> bool:
        """Whether perfect information is available for this group."""
        return self.correct_count is not None

    def with_selectivity(self, selectivity: float, variance: float = 0.0) -> "GroupStatistics":
        """Copy with a replaced selectivity estimate."""
        return replace(self, selectivity=selectivity, variance=variance)


class SelectivityModel:
    """An ordered collection of :class:`GroupStatistics`."""

    def __init__(self, groups: Iterable[GroupStatistics]):
        self._groups: List[GroupStatistics] = list(groups)
        keys = [group.key for group in self._groups]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate group keys in model: {keys}")
        self._by_key: Dict[Hashable, GroupStatistics] = {
            group.key: group for group in self._groups
        }

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_exact_counts(
        cls, counts: Mapping[Hashable, tuple[int, int]]
    ) -> "SelectivityModel":
        """Build a perfect-information model from ``{key: (correct, incorrect)}``."""
        groups = []
        for key, (correct, incorrect) in counts.items():
            size = correct + incorrect
            selectivity = correct / size if size else 0.0
            groups.append(
                GroupStatistics(
                    key=key,
                    size=size,
                    selectivity=selectivity,
                    correct_count=correct,
                    incorrect_count=incorrect,
                )
            )
        return cls(groups)

    @classmethod
    def from_selectivities(
        cls,
        sizes: Mapping[Hashable, int],
        selectivities: Mapping[Hashable, float],
        variances: Optional[Mapping[Hashable, float]] = None,
    ) -> "SelectivityModel":
        """Build a model from known (or estimated) selectivities."""
        variances = variances or {}
        groups = [
            GroupStatistics(
                key=key,
                size=int(size),
                selectivity=float(selectivities[key]),
                variance=float(variances.get(key, 0.0)),
            )
            for key, size in sizes.items()
        ]
        return cls(groups)

    @classmethod
    def from_sample_outcome(
        cls, index: GroupIndex, outcome: SampleOutcome
    ) -> "SelectivityModel":
        """Build an estimated-selectivity model from sampling results.

        Selectivity and variance come from the Beta posterior of each group's
        sample (Section 4.1); groups never sampled fall back to the uniform
        prior (mean 0.5, large variance), which keeps the optimizer cautious
        about them.
        """
        groups = []
        for key in index.values:
            sample = outcome.samples.get(key)
            size = index.group_size(key)
            if sample is None:
                posterior = BetaPosterior.uninformed()
                sampled = 0
                positives = 0
            else:
                posterior = sample.posterior
                sampled = sample.sample_size
                positives = sample.positives
            groups.append(
                GroupStatistics(
                    key=key,
                    size=size,
                    selectivity=posterior.mean,
                    variance=posterior.variance,
                    sampled=sampled,
                    sampled_positives=positives,
                )
            )
        return cls(groups)

    @classmethod
    def from_ground_truth(
        cls, index: GroupIndex, positive_row_ids: Iterable[int]
    ) -> "SelectivityModel":
        """Build a perfect-information model from the true positive set.

        One ``bincount`` over the index's per-row group codes replaces the
        per-group membership tests of the dict-based construction.
        """
        positives = np.fromiter(set(positive_row_ids), dtype=np.intp)
        sizes = index.size_array()
        if positives.size:
            correct = np.bincount(
                index.codes_for_rows(positives), minlength=index.num_groups
            )
        else:
            correct = np.zeros(index.num_groups, dtype=np.intp)
        counts = {
            key: (int(correct[code]), int(sizes[code] - correct[code]))
            for code, key in enumerate(index.values)
        }
        return cls.from_exact_counts(counts)

    @classmethod
    def from_label_array(
        cls,
        index: GroupIndex,
        table: Table,
        label_column: str,
        positive_value: Any = True,
    ) -> "SelectivityModel":
        """Build a perfect-information model straight from a hidden label column.

        Vectorised over per-shard label spans and the index codes — one pass
        over the label values instead of one dict-building row access per
        tuple, which is the hot path when oracles and auditors read ground
        truth on every query.  The spans come from
        :func:`~repro.db.residency.iter_column_spans`, so a lazy durable
        table faults each shard's label segment in one at a time (resident
        shards first) instead of materialising the whole column; per-span
        ``bincount`` partial sums of 0/1 weights are exact integers, so the
        accumulation is order-independent and bitwise equal to the
        monolithic pass.
        """
        from repro.db.residency import iter_column_spans

        sizes = index.size_array()
        correct = np.zeros(index.num_groups, dtype=np.float64)
        for start, stop, labels in iter_column_spans(
            table, label_column, allow_hidden=True
        ):
            mask = np.asarray(labels == positive_value, dtype=bool)
            correct += np.bincount(
                index.codes[start:stop], weights=mask, minlength=index.num_groups
            )
        correct = correct.astype(np.intp)
        counts = {
            key: (int(correct[code]), int(sizes[code] - correct[code]))
            for code, key in enumerate(index.values)
        }
        return cls.from_exact_counts(counts)

    @classmethod
    def merge_shards(cls, models: Iterable["SelectivityModel"]) -> "SelectivityModel":
        """Exact merge of per-shard models into the whole-table model.

        Shard models describe disjoint row ranges of one logical table, so
        every underlying statistic is a count that adds: sizes, sampled
        counts, sampled positives, and exact correct/incorrect counts.  The
        merged selectivity and variance are *recomputed* from the merged
        counts — the Beta posterior of the pooled sample for estimated
        groups, the exact fraction for perfect-information groups — which is
        why the merge is exact rather than an average-of-averages
        approximation.  Groups keep global first-appearance order (shard
        order, then each shard's own order).  Mixing exact and estimated
        statistics for one group across shards is refused: the pooled
        evidence would be neither.
        """
        sizes: Dict[Hashable, int] = {}
        sampled: Dict[Hashable, int] = {}
        positives: Dict[Hashable, int] = {}
        correct: Dict[Hashable, Optional[int]] = {}
        order: List[Hashable] = []
        for model in models:
            for group in model:
                key = group.key
                if key not in sizes:
                    order.append(key)
                    sizes[key] = 0
                    sampled[key] = 0
                    positives[key] = 0
                    correct[key] = 0 if group.has_exact_counts else None
                elif (correct[key] is not None) != group.has_exact_counts:
                    raise ValueError(
                        f"group {key!r} mixes exact and estimated statistics "
                        "across shards; merge_shards cannot pool them"
                    )
                sizes[key] += group.size
                sampled[key] += group.sampled
                positives[key] += group.sampled_positives
                if group.has_exact_counts:
                    correct[key] += int(group.correct_count)  # type: ignore[arg-type]
        merged: List[GroupStatistics] = []
        for key in order:
            if correct[key] is not None:
                size = sizes[key]
                exact = int(correct[key])  # type: ignore[arg-type]
                merged.append(
                    GroupStatistics(
                        key=key,
                        size=size,
                        selectivity=exact / size if size else 0.0,
                        correct_count=exact,
                        incorrect_count=size - exact,
                        sampled=sampled[key],
                        sampled_positives=positives[key],
                    )
                )
            else:
                posterior = BetaPosterior(
                    positives=positives[key],
                    negatives=sampled[key] - positives[key],
                )
                merged.append(
                    GroupStatistics(
                        key=key,
                        size=sizes[key],
                        selectivity=posterior.mean,
                        variance=posterior.variance,
                        sampled=sampled[key],
                        sampled_positives=positives[key],
                    )
                )
        return cls(merged)

    # -- aggregate quantities ---------------------------------------------------------
    @property
    def groups(self) -> List[GroupStatistics]:
        """All group statistics in model order."""
        return list(self._groups)

    @property
    def keys(self) -> List[Hashable]:
        """All group keys in model order."""
        return [group.key for group in self._groups]

    @property
    def total_size(self) -> int:
        """Total number of tuples ``n``."""
        return sum(group.size for group in self._groups)

    @property
    def total_remaining(self) -> int:
        """Total number of not-yet-sampled tuples."""
        return sum(group.remaining for group in self._groups)

    @property
    def total_sampled_positives(self) -> int:
        """Total sampled tuples that satisfied the predicate."""
        return sum(group.sampled_positives for group in self._groups)

    @property
    def expected_correct_total(self) -> float:
        """Expected total number of correct tuples."""
        return sum(group.expected_correct for group in self._groups)

    @property
    def overall_selectivity(self) -> float:
        """Size-weighted average selectivity."""
        total = self.total_size
        if total == 0:
            return 0.0
        return sum(group.size * group.selectivity for group in self._groups) / total

    @property
    def minimum_positive_selectivity(self) -> float:
        """Smallest non-zero selectivity (``s^min_a`` in Theorem 3.6)."""
        positive = [g.selectivity for g in self._groups if g.selectivity > 0]
        return min(positive) if positive else 0.0

    def group(self, key: Hashable) -> GroupStatistics:
        """Look up one group by key."""
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(f"unknown group {key!r}; known groups: {self.keys}") from None

    def has_group(self, key: Hashable) -> bool:
        """Whether ``key`` is a group of this model."""
        return key in self._by_key

    def sorted_by_selectivity(self, descending: bool = True) -> List[GroupStatistics]:
        """Groups ordered by selectivity (ties broken by size, then key order)."""
        order = {group.key: i for i, group in enumerate(self._groups)}
        return sorted(
            self._groups,
            key=lambda g: (-g.selectivity if descending else g.selectivity, order[g.key]),
        )

    def __iter__(self) -> Iterator[GroupStatistics]:
        return iter(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SelectivityModel(groups={len(self._groups)}, total={self.total_size})"
