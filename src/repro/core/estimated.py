"""Estimated-selectivity optimizers (paper Sections 3.3 and 4.2).

When selectivities come from sampling (or any other estimator) they are random
variables ``S_a`` with mean ``s_a`` and variance ``v_a``.  The paper keeps the
precision/recall constraints satisfied with probability ``rho`` via Chebyshev:
the expectation of each constraint quantity must exceed ``e_rho = 1/sqrt(1-rho)``
times its standard deviation.  Two variants differ in how per-group deviations
combine:

* **unknown correlations** (Convex Program 3.10): deviations add linearly —
  after introducing auxiliary variables for ``|R_a - beta|`` the program is an
  LP;
* **independent groups** (Convex Program 3.11): deviations add in quadrature —
  the constraint is a second-order cone and is solved with the SLSQP-backed
  :class:`~repro.solvers.convex.ConvexSolver`.

Both variants transparently handle sunk sampling costs (Convex Program 4.1):
group sizes are replaced by the *remaining* ``t_a - F_a`` tuples and the
already-found positives ``F_a^+`` contribute deterministically to precision
and recall.  Setting every ``F_a`` to zero recovers the Section 3.3 programs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.bigreedy import solve_bigreedy
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.resilience.deadline import check_deadline
from repro.solvers.convex import ConvexProblem, ConvexSolver
from repro.solvers.linear import (
    InfeasibleProblemError,
    LinearProgram,
    solve_linear_program,
)
from repro.stats.chebyshev import chebyshev_deviation_factor

_ALPHA_CERTAIN = 1.0 - 1e-12


@dataclass(frozen=True)
class EstimatedSolution:
    """Plan plus diagnostics for an estimated-selectivity solve."""

    plan: ExecutionPlan
    expected_cost: float
    independent: bool
    used_fallback: bool = False


def _warm_start(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel,
) -> Optional[List[float]]:
    """BiGreedy solution (selectivities treated as exact) as a warm start."""
    try:
        greedy = solve_bigreedy(model, constraints, cost_model)
    except InfeasibleProblemError:
        return None
    values: List[float] = []
    for group in model:
        values.append(greedy.plan.decision(group.key).retrieve_probability)
    for group in model:
        values.append(greedy.plan.decision(group.key).evaluate_probability)
    return values


def solve_estimated_selectivity(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    independent: bool = True,
    solver: Optional[ConvexSolver] = None,
) -> EstimatedSolution:
    """Solve Convex Program 3.10/3.11 (or 4.1 when the model carries samples).

    Raises :class:`InfeasibleProblemError` when no plan satisfies the
    Chebyshev-margined constraints; callers fall back to exhaustive
    evaluation.
    """
    check_deadline("solve")
    if independent:
        return _solve_independent(model, constraints, cost_model, solver)
    return _solve_unknown_correlations(model, constraints, cost_model)


# ---------------------------------------------------------------------------
# Independent groups: second-order-cone constraints, solved with SLSQP.
# ---------------------------------------------------------------------------
def _solve_independent(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel,
    solver: Optional[ConvexSolver],
) -> EstimatedSolution:
    groups = model.groups
    k = len(groups)
    if k == 0:
        return EstimatedSolution(ExecutionPlan({}), 0.0, independent=True)

    alpha = constraints.alpha
    beta = constraints.beta
    e_rho = chebyshev_deviation_factor(constraints.rho)
    browsing = alpha >= _ALPHA_CERTAIN

    remaining = np.asarray([group.remaining for group in groups], dtype=float)
    selectivity = np.asarray([group.selectivity for group in groups], dtype=float)
    variance = np.asarray([group.variance for group in groups], dtype=float)
    sampled_positives = np.asarray(
        [group.sampled_positives for group in groups], dtype=float
    )

    # The objective and constraints are normalised by the remaining tuple
    # count so their values are O(1); this keeps SLSQP well-conditioned and
    # makes the solver's absolute feasibility tolerance meaningful across
    # dataset sizes.  The reported cost is recomputed from the plan, so the
    # scaling does not leak out.
    scale = 1.0 / max(1.0, float(np.sum(remaining)))
    objective = list(remaining * cost_model.retrieval_cost * scale) + list(
        remaining * cost_model.evaluation_cost * scale
    )
    problem = ConvexProblem(objective=objective)

    # Coupling constraints R_a >= E_a (equality in the browsing scenario).
    for index in range(k):
        row = [0.0] * (2 * k)
        row[index] = 1.0
        row[k + index] = -1.0
        problem.linear_inequalities.append((list(row), 0.0))
        if browsing:
            problem.linear_inequalities.append(([-value for value in row], 0.0))

    def split(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return x[:k], x[k:]

    # Constraint gradients are supplied analytically: with only numerical
    # differentiation SLSQP re-evaluates each nonlinear constraint 2k+1
    # times per jacobian, which dominated the cold query path.
    if 0.0 < alpha < _ALPHA_CERTAIN:
        precision_expect_grad_r = (
            (1.0 - alpha) * remaining * selectivity
            - alpha * remaining * (1.0 - selectivity)
        )
        precision_expect_grad_e = alpha * remaining * (1.0 - selectivity)

        def precision_constraint(x: np.ndarray) -> float:
            retrieve, evaluate = split(x)
            expectation = float(
                np.sum(sampled_positives) * (1.0 - alpha)
                + np.sum((1.0 - alpha) * remaining * selectivity * retrieve)
                - np.sum(alpha * remaining * (1.0 - selectivity) * (retrieve - evaluate))
            )
            var = float(
                np.sum(
                    remaining**2 * variance * (retrieve - alpha * evaluate) ** 2
                    + 0.25 * remaining
                )
            )
            return (expectation - e_rho * math.sqrt(max(var, 0.0))) * scale

        def precision_jacobian(x: np.ndarray) -> np.ndarray:
            retrieve, evaluate = split(x)
            deviation = retrieve - alpha * evaluate
            var = float(
                np.sum(remaining**2 * variance * deviation**2 + 0.25 * remaining)
            )
            std = math.sqrt(max(var, 1e-18))
            var_grad_r = remaining**2 * variance * deviation / std
            grad_r = precision_expect_grad_r - e_rho * var_grad_r
            grad_e = precision_expect_grad_e + e_rho * alpha * var_grad_r
            return np.concatenate([grad_r, grad_e]) * scale

        problem.inequality_constraints.append(
            (precision_constraint, precision_jacobian)
        )

    expected_total_correct = float(
        np.sum(sampled_positives) + np.sum(remaining * selectivity)
    )
    recall_expect_grad_r = remaining * selectivity

    def recall_constraint(x: np.ndarray) -> float:
        retrieve, _ = split(x)
        expectation = float(
            np.sum(sampled_positives)
            + np.sum(remaining * selectivity * retrieve)
            - beta * expected_total_correct
        )
        var = float(
            np.sum(remaining**2 * variance * (retrieve - beta) ** 2 + 0.25 * remaining)
        )
        return (expectation - e_rho * math.sqrt(max(var, 0.0))) * scale

    def recall_jacobian(x: np.ndarray) -> np.ndarray:
        retrieve, _ = split(x)
        deviation = retrieve - beta
        var = float(
            np.sum(remaining**2 * variance * deviation**2 + 0.25 * remaining)
        )
        std = math.sqrt(max(var, 1e-18))
        grad_r = recall_expect_grad_r - e_rho * remaining**2 * variance * deviation / std
        return np.concatenate([grad_r, np.zeros_like(grad_r)]) * scale

    problem.inequality_constraints.append((recall_constraint, recall_jacobian))

    solver = solver or ConvexSolver()
    warm_starts = []
    greedy_warm = _warm_start(model, constraints, cost_model)
    if greedy_warm is not None:
        warm_starts.append(greedy_warm)
    # The unknown-correlations LP over-estimates the deviation term
    # (sum of deviations >= sqrt of sum of squares), so its solution is
    # guaranteed feasible here; it doubles as a high-quality warm start and
    # as the fallback plan should SLSQP fail to converge.
    try:
        linear_solution = _solve_unknown_correlations(model, constraints, cost_model)
        linear_vector = [
            linear_solution.plan.decision(group.key).retrieve_probability
            for group in groups
        ] + [
            linear_solution.plan.decision(group.key).evaluate_probability
            for group in groups
        ]
        warm_starts.append(linear_vector)
    except InfeasibleProblemError:
        linear_solution = None
    solution = solver.solve(problem, warm_starts=warm_starts or None)

    decisions = {}
    for index, group in enumerate(groups):
        retrieve = min(1.0, max(0.0, float(solution.values[index])))
        evaluate = min(retrieve, max(0.0, float(solution.values[k + index])))
        if browsing:
            evaluate = retrieve
        decisions[group.key] = GroupDecision(retrieve=retrieve, evaluate=evaluate)
    plan = ExecutionPlan(decisions)
    return EstimatedSolution(
        plan=plan,
        expected_cost=plan.expected_cost(model, cost_model, include_sampling=False),
        independent=True,
        used_fallback=solution.status == "fallback",
    )


# ---------------------------------------------------------------------------
# Unknown correlations: deviations add linearly, the program is an LP with
# auxiliary variables z_a >= |R_a - beta|.
# ---------------------------------------------------------------------------
def _solve_unknown_correlations(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel,
) -> EstimatedSolution:
    groups = model.groups
    k = len(groups)
    if k == 0:
        return EstimatedSolution(ExecutionPlan({}), 0.0, independent=False)

    alpha = constraints.alpha
    beta = constraints.beta
    e_rho = chebyshev_deviation_factor(constraints.rho)
    browsing = alpha >= _ALPHA_CERTAIN

    remaining = [group.remaining for group in groups]
    selectivity = [group.selectivity for group in groups]
    deviation = [math.sqrt(group.variance) for group in groups]
    sampled_positives = [group.sampled_positives for group in groups]
    half_sqrt_remaining = sum(0.5 * math.sqrt(max(rem, 0)) for rem in remaining)

    # Variables: [R_1..R_k, E_1..E_k, Z_1..Z_k] with Z_a >= |R_a - beta|.
    objective = (
        [rem * cost_model.retrieval_cost for rem in remaining]
        + [rem * cost_model.evaluation_cost for rem in remaining]
        + [0.0] * k
    )
    program = LinearProgram(objective=objective, bounds=[(0.0, 1.0)] * (3 * k))

    # Precision: E[P] - e_rho * sum(sqrt(v_a) rem_a (R_a - alpha E_a)) >=
    #            e_rho * 0.5 * sum(sqrt(rem_a)) - sum(F_a^+ (1 - alpha)).
    if 0.0 < alpha < _ALPHA_CERTAIN:
        row = [0.0] * (3 * k)
        for index in range(k):
            row[index] = (
                (1.0 - alpha) * remaining[index] * selectivity[index]
                - alpha * remaining[index] * (1.0 - selectivity[index])
                - e_rho * deviation[index] * remaining[index]
            )
            row[k + index] = (
                alpha * remaining[index] * (1.0 - selectivity[index])
                + e_rho * deviation[index] * remaining[index] * alpha
            )
        bound = e_rho * half_sqrt_remaining - sum(
            positives * (1.0 - alpha) for positives in sampled_positives
        )
        program.add_ge(row, bound)

    # Recall: E[R] - e_rho * sum(sqrt(v_a) rem_a Z_a) >=
    #         e_rho * 0.5 * sum(sqrt(rem_a)) + beta * total_correct - sum(F_a^+).
    total_correct = sum(
        positives + rem * sel
        for positives, rem, sel in zip(sampled_positives, remaining, selectivity)
    )
    row = [0.0] * (3 * k)
    for index in range(k):
        row[index] = remaining[index] * selectivity[index]
        row[2 * k + index] = -e_rho * deviation[index] * remaining[index]
    bound = (
        e_rho * half_sqrt_remaining
        + beta * total_correct
        - sum(sampled_positives)
    )
    program.add_ge(row, bound)

    # Z_a >= R_a - beta  and  Z_a >= beta - R_a.
    for index in range(k):
        row_upper = [0.0] * (3 * k)
        row_upper[2 * k + index] = 1.0
        row_upper[index] = -1.0
        program.add_ge(row_upper, -beta)
        row_lower = [0.0] * (3 * k)
        row_lower[2 * k + index] = 1.0
        row_lower[index] = 1.0
        program.add_ge(row_lower, beta)

    # Coupling R_a >= E_a (equality in the browsing scenario).
    for index in range(k):
        row = [0.0] * (3 * k)
        row[index] = 1.0
        row[k + index] = -1.0
        program.add_ge(row, 0.0)
        if browsing:
            program.add_ge([-value for value in row], 0.0)

    solution = solve_linear_program(program)
    decisions = {}
    for index, group in enumerate(groups):
        retrieve = min(1.0, max(0.0, float(solution.values[index])))
        evaluate = min(retrieve, max(0.0, float(solution.values[k + index])))
        if browsing:
            evaluate = retrieve
        decisions[group.key] = GroupDecision(retrieve=retrieve, evaluate=evaluate)
    plan = ExecutionPlan(decisions)
    return EstimatedSolution(
        plan=plan,
        expected_cost=plan.expected_cost(model, cost_model, include_sampling=False),
        independent=False,
    )
