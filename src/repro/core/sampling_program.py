"""Convex Program 4.1: joint estimation and exploitation (paper Section 4.2).

This is a thin, named wrapper over the estimated-selectivity machinery in
:mod:`repro.core.estimated`: once a :class:`~repro.core.groups.SelectivityModel`
is built from a :class:`~repro.sampling.sampler.SampleOutcome`, the remaining
group sizes ``t_a - F_a``, the Beta-posterior estimates ``(s_a, v_a)`` and the
already-found positives ``F_a^+`` are all in place, and the independent-groups
convex program of Section 3.3 becomes exactly Convex Program 4.1.  The module
exists so the pipeline (and readers of the code) can reference the paper's
program by name, and so the sunk sampling cost is reported alongside the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.estimated import EstimatedSolution, solve_estimated_selectivity
from repro.core.groups import SelectivityModel
from repro.core.plan import ExecutionPlan
from repro.db.index import GroupIndex
from repro.sampling.sampler import SampleOutcome
from repro.solvers.convex import ConvexSolver


@dataclass(frozen=True)
class SamplingProgramSolution:
    """Plan plus cost breakdown for a Convex Program 4.1 solve."""

    plan: ExecutionPlan
    model: SelectivityModel
    expected_execution_cost: float
    sunk_sampling_cost: float
    independent: bool
    used_fallback: bool

    @property
    def expected_total_cost(self) -> float:
        """Expected cost including the sampling already paid for."""
        return self.expected_execution_cost + self.sunk_sampling_cost


def solve_with_samples(
    index: GroupIndex,
    outcome: SampleOutcome,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    independent: bool = True,
    solver: Optional[ConvexSolver] = None,
) -> SamplingProgramSolution:
    """Build the model from ``outcome`` and solve Convex Program 4.1."""
    model = SelectivityModel.from_sample_outcome(index, outcome)
    return solve_from_model(
        model,
        constraints,
        cost_model=cost_model,
        independent=independent,
        solver=solver,
    )


def solve_with_shard_outcomes(
    index: GroupIndex,
    shard_outcomes: Sequence[SampleOutcome],
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    independent: bool = True,
    solver: Optional[ConvexSolver] = None,
) -> SamplingProgramSolution:
    """Solve Convex Program 4.1 from independently sampled shard outcomes.

    Scale-out entry point: each shard samples its own row range (outcomes in
    global row-id space), the counts merge exactly via
    :meth:`SampleOutcome.merge_shards`, and the solve proceeds on the merged
    evidence — identical to having sampled the unsharded table with the same
    draws.  ``index`` is the whole-table (merged) index the plan executes
    over.
    """
    merged = SampleOutcome.merge_shards(shard_outcomes, key_order=index.values)
    return solve_with_samples(
        index,
        merged,
        constraints,
        cost_model=cost_model,
        independent=independent,
        solver=solver,
    )


def solve_from_model(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    independent: bool = True,
    solver: Optional[ConvexSolver] = None,
) -> SamplingProgramSolution:
    """Solve Convex Program 4.1 for a model that already carries sample counts."""
    solution: EstimatedSolution = solve_estimated_selectivity(
        model,
        constraints,
        cost_model=cost_model,
        independent=independent,
        solver=solver,
    )
    sunk = sum(group.sampled for group in model) * (
        cost_model.retrieval_cost + cost_model.evaluation_cost
    )
    return SamplingProgramSolution(
        plan=solution.plan,
        model=model,
        expected_execution_cost=solution.expected_cost,
        sunk_sampling_cost=sunk,
        independent=solution.independent,
        used_fallback=solution.used_fallback,
    )
