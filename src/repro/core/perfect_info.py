"""Perfect-information optimizer (paper Section 3.1, Problem 1).

Exact per-group counts ``C_a`` / ``W_a`` are assumed known, decisions are
boolean, and constraints must hold deterministically.  The problem is NP-hard
(Theorem 3.2, by reduction from minimum knapsack), but the number of groups in
practice is small, so an exact branch-and-bound / brute-force solve is
perfectly feasible and gives a true lower-bound baseline.  A greedy heuristic
mirroring BiGreedy's ordering is provided for larger group counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.solvers.branch_bound import BranchAndBoundSolver, IntegerProgram
from repro.solvers.knapsack import KnapsackItem
from repro.solvers.linear import InfeasibleProblemError


def _require_exact_counts(model: SelectivityModel) -> None:
    missing = [g.key for g in model if not g.has_exact_counts]
    if missing:
        raise ValueError(
            "perfect-information optimization requires exact correct/incorrect "
            f"counts for every group; missing for {missing}"
        )


def _build_integer_program(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel,
) -> IntegerProgram:
    """Encode Problem 1 as a 0/1 integer program over ``[R_1..R_k, E_1..E_k]``."""
    groups = model.groups
    k = len(groups)
    objective: List[float] = []
    for group in groups:
        objective.append(group.size * cost_model.retrieval_cost)
    for group in groups:
        objective.append(group.size * cost_model.evaluation_cost)

    program = IntegerProgram(objective=objective)

    total_correct = sum(float(group.correct_count) for group in groups)
    # Recall: sum_a C_a R_a >= beta * sum_a C_a
    recall_row = [float(group.correct_count) for group in groups] + [0.0] * k
    program.constraints_ge.append((recall_row, constraints.beta * total_correct))

    # Precision (rewritten as Constraint 3): for alpha > 0,
    # sum_a ((1/alpha - 1) C_a - W_a) R_a + W_a E_a >= 0
    if constraints.alpha > 0.0:
        precision_row = [
            (1.0 / constraints.alpha - 1.0) * group.correct_count - group.incorrect_count
            for group in groups
        ] + [float(group.incorrect_count) for group in groups]
        program.constraints_ge.append((precision_row, 0.0))

    # Coupling R_a >= E_a.
    for index in range(k):
        row = [0.0] * (2 * k)
        row[index] = 1.0
        row[k + index] = -1.0
        program.constraints_ge.append((row, 0.0))
    return program


@dataclass(frozen=True)
class PerfectInformationSolution:
    """Plan plus objective value for a Problem 1 instance."""

    plan: ExecutionPlan
    cost: float
    optimal: bool


def solve_perfect_information(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
    solver: BranchAndBoundSolver | None = None,
) -> PerfectInformationSolution:
    """Solve Problem 1 exactly.

    Raises
    ------
    ValueError
        If any group lacks exact counts.
    InfeasibleProblemError
        If no 0/1 assignment satisfies the constraints (cannot happen when
        ``alpha, beta <= 1`` because evaluating everything is feasible, but
        kept for safety).
    """
    _require_exact_counts(model)
    solver = solver or BranchAndBoundSolver()
    program = _build_integer_program(model, constraints, cost_model)
    solution = solver.solve(program)
    groups = model.groups
    k = len(groups)
    decisions = {}
    for index, group in enumerate(groups):
        retrieve = float(solution.values[index])
        evaluate = float(solution.values[k + index])
        decisions[group.key] = GroupDecision(retrieve=retrieve, evaluate=evaluate)
    return PerfectInformationSolution(
        plan=ExecutionPlan(decisions),
        cost=solution.objective_value,
        optimal=solution.optimal,
    )


def greedy_perfect_information(
    model: SelectivityModel,
    constraints: QueryConstraints,
    cost_model: CostModel = CostModel(),
) -> PerfectInformationSolution:
    """A fast heuristic mirroring BiGreedy's ordering on exact counts.

    Retrieve groups in decreasing selectivity order until the recall target is
    met; then evaluate retrieved groups in increasing selectivity order until
    the precision target is met.  Not optimal in general (the problem is
    NP-hard) but feasible whenever a feasible plan exists that retrieves whole
    groups.
    """
    _require_exact_counts(model)
    total_correct = sum(group.correct_count for group in model)
    recall_target = constraints.beta * total_correct

    retrieved: dict = {group.key: False for group in model}
    evaluated: dict = {group.key: False for group in model}

    achieved_correct = 0.0
    for group in model.sorted_by_selectivity(descending=True):
        if achieved_correct >= recall_target - 1e-9:
            break
        retrieved[group.key] = True
        achieved_correct += group.correct_count

    def precision_ok() -> bool:
        returned_correct = sum(
            group.correct_count for group in model if retrieved[group.key]
        )
        returned_incorrect = sum(
            group.incorrect_count
            for group in model
            if retrieved[group.key] and not evaluated[group.key]
        )
        returned_total = returned_correct + returned_incorrect
        if returned_total == 0:
            return True
        return returned_correct / returned_total >= constraints.alpha - 1e-12

    for group in model.sorted_by_selectivity(descending=False):
        if precision_ok():
            break
        if retrieved[group.key]:
            evaluated[group.key] = True

    if achieved_correct < recall_target - 1e-9 or not precision_ok():
        raise InfeasibleProblemError(
            "greedy heuristic could not satisfy the precision/recall constraints"
        )

    decisions = {
        group.key: GroupDecision(
            retrieve=1.0 if retrieved[group.key] else 0.0,
            evaluate=1.0 if evaluated[group.key] else 0.0,
        )
        for group in model
    }
    plan = ExecutionPlan(decisions)
    cost = sum(
        group.size
        * (
            cost_model.retrieval_cost * (1.0 if retrieved[group.key] else 0.0)
            + cost_model.evaluation_cost * (1.0 if evaluated[group.key] else 0.0)
        )
        for group in model
    )
    return PerfectInformationSolution(plan=plan, cost=cost, optimal=False)


def knapsack_to_perfect_information(
    items: Sequence[KnapsackItem], value_target: float
) -> Tuple[SelectivityModel, QueryConstraints]:
    """The reduction used in the paper's NP-hardness proof (Theorem 3.2).

    Given a minimum-knapsack instance, produce a Problem 1 instance whose
    optimal retrieval set corresponds to the optimal knapsack subset.  Weights
    are scaled (if necessary) so that ``w_s > v_s`` as the proof requires,
    then ``W_a = w_a - v_a`` and ``C_a = v_a``; the precision constraint is
    dropped (``alpha = 0``) and the recall bound encodes the value target.

    Counts are rounded to integers, so callers should use integer weights and
    values (the tests do).
    """
    if not items:
        raise ValueError("the knapsack instance must contain at least one item")
    max_ratio = max(
        (item.value / item.weight) if item.weight > 0 else float("inf") for item in items
    )
    scale = 1.0
    if max_ratio >= 1.0 and max_ratio != float("inf"):
        scale = max_ratio + 1.0
    counts = {}
    for item in items:
        weight = item.weight * scale
        correct = int(round(item.value))
        incorrect = int(round(weight - item.value))
        if incorrect <= 0:
            incorrect = 1
        counts[item.identifier] = (correct, incorrect)
    model = SelectivityModel.from_exact_counts(counts)
    total_correct = sum(correct for correct, _ in counts.values())
    beta = min(1.0, value_target / total_correct) if total_correct else 0.0
    constraints = QueryConstraints(alpha=0.0, beta=beta, rho=0.5)
    return model, constraints
