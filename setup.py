"""Setuptools shim.

The offline environment has setuptools but not the ``wheel`` package, so the
PEP 660 editable-install path is unavailable; this legacy ``setup.py`` lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on fully provisioned machines) work either way.
"""

from setuptools import setup

setup()
