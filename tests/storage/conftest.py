"""Fixtures for the durable-storage suite.

Every test gets a scratch store directory and the shared leak invariant:
zero exported shm segments, zero dangling segment memmaps (after GC) and
zero torn ``.tmp`` files left anywhere under the test's tmp tree — even
for the tests that tear writes and quarantine artifacts on purpose.
"""

import numpy as np
import pytest

from leakcheck import assert_no_leaked_resources
from repro.db.sharding import ShardedTable
from repro.db.storage import reset_storage_counters
from repro.db.table import Table


@pytest.fixture(autouse=True)
def _no_leaked_resources(tmp_path):
    reset_storage_counters()
    yield
    assert_no_leaked_resources(str(tmp_path))


def build_columns(rows=200, seed=5):
    rng = np.random.default_rng(seed)
    return {
        "A": [f"g{int(v)}" for v in rng.integers(0, 6, rows)],
        "amount": [float(v) for v in np.round(rng.normal(50, 12, rows), 3)],
        "count": [int(v) for v in rng.integers(0, 1000, rows)],
        "active": [bool(v) for v in rng.random(rows) < 0.5],
        "f": [bool(v) for v in rng.random(rows) < 0.3],
    }


@pytest.fixture
def table():
    return Table.from_columns("tbl", build_columns(), hidden_columns=["f"])


@pytest.fixture
def sharded_table():
    return ShardedTable.from_columns(
        "stbl", build_columns(rows=260, seed=9), num_shards=4, hidden_columns=["f"]
    )


def table_cells(table):
    """Every visible+hidden column's python values (the bitwise pin)."""
    return {
        name: table.column_values(name, allow_hidden=True)
        for name in table.schema.column_names
    }


@pytest.fixture
def cells():
    """The ``table_cells`` helper as a fixture (conftest is not importable)."""
    return table_cells


@pytest.fixture
def make_columns():
    """The ``build_columns`` helper as a fixture."""
    return build_columns
