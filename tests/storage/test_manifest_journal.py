"""Manifest commit point and write-ahead journal semantics."""

import json
import zlib

import pytest

from repro.db.errors import CorruptSegmentError, ManifestVersionError
from repro.db.storage.journal import (
    JOURNAL_MAGIC,
    append_record,
    read_records,
    truncate,
)
from repro.db.storage.manifest import (
    MANIFEST_VERSION,
    read_manifest,
    write_manifest,
)


class TestManifest:
    def test_round_trip_stamps_version(self, tmp_path):
        path = str(tmp_path / "MANIFEST.json")
        write_manifest(path, {"table": "t", "data_generation": 3})
        body = read_manifest(path)
        assert body["table"] == "t"
        assert body["data_generation"] == 3
        assert body["format_version"] == MANIFEST_VERSION

    def test_absent_manifest_reads_as_none(self, tmp_path):
        assert read_manifest(str(tmp_path / "nope.json")) is None

    def test_bit_flip_fails_checksum(self, tmp_path):
        path = str(tmp_path / "MANIFEST.json")
        write_manifest(path, {"table": "t", "data_generation": 3})
        data = open(path, "rb").read().replace(b'"t"', b'"u"')
        open(path, "wb").write(data)
        with pytest.raises(CorruptSegmentError) as excinfo:
            read_manifest(path)
        assert "checksum mismatch" in str(excinfo.value)

    def test_truncated_manifest_fails_typed(self, tmp_path):
        path = str(tmp_path / "MANIFEST.json")
        write_manifest(path, {"table": "t"})
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(CorruptSegmentError):
            read_manifest(path)

    def test_unknown_version_fails_typed(self, tmp_path):
        path = str(tmp_path / "MANIFEST.json")
        body = {"table": "t", "format_version": MANIFEST_VERSION + 1}
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
        document = json.dumps({"crc": zlib.crc32(canonical), "body": body})
        open(path, "w").write(document)
        with pytest.raises(ManifestVersionError):
            read_manifest(path)

    def test_envelope_without_crc_fails_typed(self, tmp_path):
        path = str(tmp_path / "MANIFEST.json")
        open(path, "w").write(json.dumps({"body": {"table": "t"}}))
        with pytest.raises(CorruptSegmentError):
            read_manifest(path)


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        append_record(path, 1, {"A": ["x", "y"], "n": [1, 2]})
        append_record(path, 2, {"A": ["z"], "n": [3]})
        records, truncated = read_records(path)
        assert not truncated
        assert [r["generation"] for r in records] == [1, 2]
        assert records[0]["columns"]["A"] == ["x", "y"]
        assert records[1]["columns"]["n"] == [3]

    def test_missing_or_empty_journal_is_clean(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        assert read_records(path) == ([], False)
        open(path, "wb").close()
        assert read_records(path) == ([], False)

    def test_torn_tail_keeps_valid_prefix(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        append_record(path, 1, {"A": ["x"]})
        size_after_first = len(open(path, "rb").read())
        append_record(path, 2, {"A": ["y"]})
        data = open(path, "rb").read()
        open(path, "wb").write(data[: size_after_first + 5])  # tear record 2
        records, truncated = read_records(path)
        assert truncated
        assert [r["generation"] for r in records] == [1]

    def test_bit_flip_in_record_truncates_there(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        append_record(path, 1, {"A": ["x"]})
        append_record(path, 2, {"A": ["y"]})
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0x01
        open(path, "wb").write(bytes(data))
        records, truncated = read_records(path)
        assert truncated
        assert [r["generation"] for r in records] == [1]

    def test_bad_magic_is_corruption_not_truncation(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        open(path, "wb").write(b"NOTAWAL\x00rest of the file")
        with pytest.raises(CorruptSegmentError):
            read_records(path)

    def test_truncate_resets_to_magic_only(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        append_record(path, 1, {"A": ["x"]})
        truncate(path)
        assert open(path, "rb").read() == JOURNAL_MAGIC
        assert read_records(path) == ([], False)
