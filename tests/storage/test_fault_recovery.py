"""Chaos gate: every injected crash point recovers — no silent corruption.

For each fault site (``manifest_write``, ``segment_write``,
``journal_append``, ``segment_read``) the contract is differential: after
an injected torn write or bit flip, reopening the store either serves data
**bitwise identical to the pre-crash durable generation**, or raises a
typed quarantine error and rebuilds from source.  ``error``-kind rules
model the torn write in-process (``crash`` would ``os._exit`` the test
runner — the write path is identical up to the fault, so the on-disk state
is the same); ``garbage`` at ``segment_read`` models a media bit flip.
The suite-wide autouse fixture additionally asserts zero leaked temp files
after every test, including the torn ones.
"""

import os

import pytest

from repro.db.errors import CorruptSegmentError
from repro.db.storage import TableStore
from repro.resilience.faults import (
    ERROR,
    GARBAGE,
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_scope,
)


def _error_plan(site, hits=(0,)):
    rule = FaultRule(ERROR, addresses=frozenset({(hit,) for hit in hits}))
    return FaultPlan(seed=0, rules={site: rule})


def _manifest_segment_entries(store):
    from repro.db.storage import read_manifest

    body = read_manifest(store.manifest_path)
    return [
        entry for per_shard in body["segments"].values() for entry in per_shard.values()
    ]


class TestFaultTornWrites:
    def test_fault_torn_manifest_write_keeps_previous_generation(
        self, tmp_path, table, cells, make_columns
    ):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        durable = cells(table)
        generation = table.data_generation
        table.append_columns(make_columns(rows=9, seed=31))  # in-memory only
        with fault_scope(_error_plan("manifest_write")):
            with pytest.raises(InjectedFault):
                store.save(table)
        loaded, report = store.open()
        assert cells(loaded) == durable
        assert loaded.data_generation == generation
        assert not report.rebuilt_from_source
        assert report.temp_files_cleaned == 1  # the torn manifest .tmp
        # The new generation's fully written segments were orphaned by the
        # torn commit; recovery swept them too.
        expected = {entry["file"] for entry in _manifest_segment_entries(store)}
        assert set(os.listdir(store.segments_dir)) == expected

    def test_fault_torn_segment_write_keeps_previous_generation(
        self, tmp_path, table, cells, make_columns
    ):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        durable = cells(table)
        generation = table.data_generation
        table.append_columns(make_columns(rows=9, seed=32))
        # Tear the third segment write of the re-checkpoint: two new
        # generation-qualified segments landed, one tore, the manifest
        # never committed.  The old manifest still points at the old
        # generation's files, which nothing overwrote — recovery serves
        # the previous durable generation bit-perfect, and sweeps both the
        # torn ``.tmp`` and the committed-but-orphaned new segments.
        with fault_scope(_error_plan("segment_write", hits=(2,))):
            with pytest.raises(InjectedFault):
                store.save(table)
        loaded, report = store.open()
        assert cells(loaded) == durable
        assert loaded.data_generation == generation
        assert not report.rebuilt_from_source
        assert report.temp_files_cleaned == 1
        expected = {entry["file"] for entry in _manifest_segment_entries(store)}
        assert set(os.listdir(store.segments_dir)) == expected

    def test_fault_torn_first_segment_write_leaves_store_untouched(
        self, tmp_path, table, cells
    ):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        durable = cells(table)
        # Tear the very first segment write of a re-checkpoint: only a
        # ``.tmp`` file exists; every committed artifact is intact.
        with fault_scope(_error_plan("segment_write", hits=(0,))):
            with pytest.raises(InjectedFault):
                store.save(table)
        assert any(
            name.endswith(".tmp") for name in os.listdir(store.segments_dir)
        )
        loaded, report = store.open()
        assert cells(loaded) == durable
        assert report.temp_files_cleaned == 1

    def test_fault_torn_journal_append_loses_only_the_torn_delta(
        self, tmp_path, table, cells, make_columns
    ):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        first = make_columns(rows=5, seed=33)
        store.append(table, first)
        durable = cells(table)
        generation = table.data_generation
        # Hit 0 of the scoped plan: only the append inside the scope counts.
        with fault_scope(_error_plan("journal_append", hits=(0,))):
            with pytest.raises(InjectedFault):
                store.append(table, make_columns(rows=4, seed=34))
        loaded, report = store.open()
        assert report.journal_records_replayed == 1
        assert report.journal_tail_truncated
        assert cells(loaded) == durable
        assert loaded.data_generation == generation

    def test_fault_bitwise_replayable_fire_log(self, tmp_path, table):
        """The same plan against the same workload fires identically."""
        logs = []
        for attempt in range(2):
            store = TableStore(str(tmp_path / f"tbl{attempt}"))
            plan = _error_plan("segment_write", hits=(2,))
            with fault_scope(plan):
                with pytest.raises(InjectedFault):
                    store.save(table)
            logs.append(plan.fired())
            # First-ever checkpoint tore: no manifest exists; recovery
            # bootstraps from source and sweeps the torn temp file.
            _, report = store.open(rebuild=lambda: table)
            assert report.rebuilt_from_source
            assert report.temp_files_cleaned == 1
        assert logs[0] == logs[1] == [("segment_write", (2,), ERROR)]


class TestFaultBitFlips:
    def test_fault_segment_read_garbage_fails_typed_and_quarantines(
        self, tmp_path, table
    ):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        plan = FaultPlan(
            seed=0,
            rules={"segment_read": FaultRule(GARBAGE, addresses=frozenset({(0,)}))},
        )
        with fault_scope(plan):
            with pytest.raises(CorruptSegmentError) as excinfo:
                store.open()
        assert "checksum mismatch" in str(excinfo.value)
        assert len(os.listdir(store.quarantine_dir)) == 1
        # The flip was injected at read time; the file itself is fine, but
        # the store rightly refused to serve unverified bytes.

    def test_fault_segment_read_garbage_rebuilds_from_source(
        self, tmp_path, table, cells
    ):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        plan = FaultPlan(
            seed=0,
            rules={"segment_read": FaultRule(GARBAGE, addresses=frozenset({(0,)}))},
        )
        with fault_scope(plan):
            loaded, report = store.open(rebuild=lambda: table)
        assert report.rebuilt_from_source
        assert len(report.quarantined) == 1
        assert cells(loaded) == cells(table)
        # The rebuild re-checkpointed past the poisoned read: clean now.
        reloaded, second = store.open()
        assert not second.rebuilt_from_source
        assert cells(reloaded) == cells(table)

    def test_fault_probability_rules_are_seed_deterministic(self, tmp_path, table):
        def fire_pattern(seed):
            store = TableStore(str(tmp_path / f"p{seed}"))
            store.save(table)
            plan = FaultPlan(
                seed=seed,
                rules={"segment_read": FaultRule(GARBAGE, probability=0.5)},
            )
            with fault_scope(plan):
                try:
                    store.open()
                except CorruptSegmentError:
                    pass
            return tuple(plan.fired())

        assert fire_pattern(123) == fire_pattern(123)
