"""TableStore / CatalogStore: checkpoint, journal replay, quarantine, rebuild."""

import os

import pytest

from repro.db.catalog import Catalog
from repro.db.errors import CorruptSegmentError, StorageError
from repro.db.sharding import ShardedTable
from repro.db.storage import (
    CatalogStore,
    TableStore,
    read_manifest,
    storage_counters,
    write_manifest,
)
from repro.db.table import Table


def _corrupt_one_segment(store):
    names = sorted(os.listdir(store.segments_dir))
    path = os.path.join(store.segments_dir, names[0])
    data = bytearray(open(path, "rb").read())
    data[-3] ^= 0x08
    open(path, "wb").write(bytes(data))
    return names[0]


class TestCheckpointRoundTrip:
    def test_monolithic_round_trip_is_bitwise(self, tmp_path, table, cells):
        store = TableStore(str(tmp_path / "tbl"))
        assert not store.exists()
        store.save(table)
        assert store.exists()
        loaded, report = store.open()
        assert isinstance(loaded, Table)
        assert not isinstance(loaded, ShardedTable)
        assert loaded.name == table.name
        assert loaded.shard_signature() == table.shard_signature()
        assert cells(loaded) == cells(table)
        assert [c.hidden for c in loaded.schema.columns] == [
            c.hidden for c in table.schema.columns
        ]
        assert report.segments_loaded == len(table.schema.column_names)
        assert not report.rebuilt_from_source
        assert report.generation == table.data_generation

    def test_sharded_round_trip_preserves_layout(self, tmp_path, sharded_table, cells):
        store = TableStore(str(tmp_path / "stbl"))
        store.save(sharded_table)
        loaded, report = store.open()
        assert isinstance(loaded, ShardedTable)
        assert len(loaded.shards) == len(sharded_table.shards)
        assert tuple(loaded.shard_offsets) == tuple(sharded_table.shard_offsets)
        assert loaded.tail_shard_rows == sharded_table.tail_shard_rows
        assert loaded.max_workers == sharded_table.max_workers
        assert loaded.shard_signature() == sharded_table.shard_signature()
        assert cells(loaded) == cells(sharded_table)
        assert report.segments_loaded == 4 * len(sharded_table.schema.column_names)

    def test_round_trip_without_mmap(self, tmp_path, table, cells):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        loaded, _ = store.open(mmap=False)
        assert cells(loaded) == cells(table)

    def test_counters_track_segments_and_commits(self, tmp_path, table):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        store.open()
        counters = storage_counters()
        columns = len(table.schema.column_names)
        assert counters["segments_written"] == columns
        assert counters["segments_loaded"] == columns
        assert counters["manifest_commits"] == 1
        assert counters["checksum_failures"] == 0

    def test_recheckpoint_drops_unreferenced_segments(self, tmp_path, sharded_table, table):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(sharded_table)  # 4 shards x 5 columns
        assert len(os.listdir(store.segments_dir)) == 20
        store.save(table)  # monolithic: 1 x 5
        assert len(os.listdir(store.segments_dir)) == 5
        loaded, _ = store.open()
        assert loaded.num_rows == table.num_rows

    def test_open_without_manifest_raises_typed(self, tmp_path):
        store = TableStore(str(tmp_path / "void"))
        with pytest.raises(StorageError):
            store.open()


class TestJournalReplay:
    def test_appends_replay_to_the_durable_generation(self, tmp_path, table, cells, make_columns):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        delta_a = make_columns(rows=7, seed=21)
        delta_b = make_columns(rows=3, seed=22)
        store.append(table, delta_a)
        store.append(table, delta_b)
        loaded, report = store.open()
        assert report.journal_records_replayed == 2
        assert not report.journal_tail_truncated
        assert loaded.data_generation == table.data_generation
        assert loaded.num_rows == table.num_rows
        assert cells(loaded) == cells(table)
        counters = storage_counters()
        assert counters["journal_replays"] == 1
        assert counters["journal_records_replayed"] == 2

    def test_checkpoint_resets_the_journal(self, tmp_path, table, make_columns):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        store.append(table, make_columns(rows=5, seed=23))
        store.save(table)  # checkpoint absorbs the journalled delta
        loaded, report = store.open()
        assert report.journal_records_replayed == 0
        assert loaded.num_rows == table.num_rows

    def test_stale_records_below_manifest_generation_are_skipped(
        self, tmp_path, table, make_columns
    ):
        # Crash between manifest commit and journal truncation: the journal
        # still holds records the manifest already absorbed.
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        from repro.db.storage.journal import append_record

        append_record(store.journal_path, table.data_generation, make_columns(rows=2))
        loaded, report = store.open()
        assert report.journal_records_replayed == 0
        assert loaded.num_rows == table.num_rows

    def test_generation_gap_truncates_the_tail(self, tmp_path, table, make_columns):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        from repro.db.storage.journal import append_record

        append_record(
            store.journal_path, table.data_generation + 5, make_columns(rows=2)
        )
        loaded, report = store.open()
        assert report.journal_records_replayed == 0
        assert report.journal_tail_truncated
        assert loaded.num_rows == table.num_rows
        assert storage_counters()["journal_truncations"] == 1

    def test_append_validates_before_journalling(self, tmp_path, table):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        with pytest.raises(Exception):
            store.append(table, {"no_such_column": [1]})
        # The bad delta never reached the journal.
        loaded, report = store.open()
        assert report.journal_records_replayed == 0
        assert loaded.num_rows == table.num_rows


class TestQuarantineAndRebuild:
    def test_corrupt_segment_without_rebuild_raises_and_quarantines(
        self, tmp_path, table
    ):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        bad = _corrupt_one_segment(store)
        with pytest.raises(CorruptSegmentError):
            store.open()
        assert bad in os.listdir(store.quarantine_dir)
        assert bad not in os.listdir(store.segments_dir)
        counters = storage_counters()
        assert counters["checksum_failures"] == 1
        assert counters["quarantines"] == 1
        assert counters["rebuilds"] == 0

    def test_corrupt_segment_with_rebuild_degrades_gracefully(
        self, tmp_path, table, cells
    ):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        _corrupt_one_segment(store)
        loaded, report = store.open(rebuild=lambda: table)
        assert report.rebuilt_from_source
        assert "checksum mismatch" in report.rebuild_reason
        assert len(report.quarantined) == 1
        assert cells(loaded) == cells(table)
        assert storage_counters()["rebuilds"] == 1
        # The rebuild re-checkpointed: the next open is clean.
        reloaded, second = store.open()
        assert not second.rebuilt_from_source
        assert cells(reloaded) == cells(table)

    def test_missing_manifest_with_rebuild_bootstraps(self, tmp_path, table, cells):
        store = TableStore(str(tmp_path / "tbl"))
        loaded, report = store.open(rebuild=lambda: table)
        assert report.rebuilt_from_source
        assert report.rebuild_reason == "missing manifest"
        assert cells(loaded) == cells(table)
        assert store.exists()

    def test_manifest_row_count_mismatch_fails_typed(self, tmp_path, table):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        body = read_manifest(store.manifest_path)
        body["num_rows"] = body["num_rows"] + 1
        write_manifest(store.manifest_path, body)
        with pytest.raises(CorruptSegmentError) as excinfo:
            store.open()
        assert "manifest committed" in str(excinfo.value)

    def test_torn_temp_files_are_swept_on_open(self, tmp_path, table):
        store = TableStore(str(tmp_path / "tbl"))
        store.save(table)
        torn = os.path.join(store.segments_dir, "seg-0000-c000.seg.tmp")
        open(torn, "wb").write(b"half a segment")
        open(os.path.join(store.directory, "MANIFEST.json.tmp"), "wb").write(b"{")
        _, report = store.open()
        assert report.temp_files_cleaned == 2
        assert not os.path.exists(torn)
        assert storage_counters()["temp_files_cleaned"] == 2


class TestCatalogStore:
    def test_catalog_round_trip(self, tmp_path, table, sharded_table, cells):
        catalog = Catalog()
        catalog.register_table(table)
        catalog.register_table(sharded_table)
        store = CatalogStore(str(tmp_path / "cat"))
        store.save(catalog)
        assert sorted(store.table_names()) == sorted([table.name, sharded_table.name])
        loaded, reports = store.open()
        assert sorted(loaded.table_names()) == sorted(catalog.table_names())
        assert cells(loaded.table(table.name)) == cells(table)
        assert cells(loaded.table(sharded_table.name)) == cells(sharded_table)
        assert set(reports) == {table.name, sharded_table.name}

    def test_per_table_rebuilder_is_scoped(self, tmp_path, table, sharded_table, cells):
        catalog = Catalog()
        catalog.register_table(table)
        catalog.register_table(sharded_table)
        store = CatalogStore(str(tmp_path / "cat"))
        store.save(catalog)
        _corrupt_one_segment(store.table_store(table.name))
        # No rebuilder for the corrupt table: typed error propagates.
        with pytest.raises(CorruptSegmentError):
            store.open()
        loaded, reports = store.open(rebuilders={table.name: lambda: table})
        assert reports[table.name].rebuilt_from_source
        assert not reports[sharded_table.name].rebuilt_from_source
        assert cells(loaded.table(table.name)) == cells(table)

    def test_empty_directory_opens_empty(self, tmp_path):
        store = CatalogStore(str(tmp_path / "cat"))
        assert store.table_names() == []
        catalog, reports = store.open()
        assert catalog.table_names() == []
        assert reports == {}

    def test_unsafe_table_names_get_safe_directories(self, tmp_path, make_columns):
        weird = Table.from_columns("we/ird table", make_columns(rows=10))
        catalog = Catalog()
        catalog.register_table(weird)
        store = CatalogStore(str(tmp_path / "cat"))
        store.save(catalog)
        loaded, _ = store.open()
        assert loaded.table("we/ird table").num_rows == 10
        tables_dir = os.path.join(store.directory, CatalogStore.TABLES_DIR)
        for entry in os.listdir(tables_dir):
            assert "/" not in entry and " " not in entry
