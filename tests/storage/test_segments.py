"""Segment files: round trips, checksums, atomicity, memmap discipline."""

import os
import struct
import zlib

import numpy as np
import pytest

from repro.db.errors import CorruptSegmentError
from repro.db.storage.segments import (
    SEGMENT_MAGIC,
    atomic_write_bytes,
    live_memmap_count,
    read_segment,
    write_segment,
)


@pytest.mark.parametrize(
    "array",
    [
        np.arange(500, dtype=np.int64),
        np.linspace(-3.0, 9.0, 257),
        np.array([True, False, True] * 40),
        np.array(["ab", "c", "defg"] * 21),
        np.array([b"x", b"longer", b""] * 13),
    ],
    ids=["int64", "float64", "bool", "unicode", "bytes"],
)
def test_fixed_width_round_trip_is_bitwise(tmp_path, array):
    path = str(tmp_path / "col.seg")
    entry = write_segment(path, "col", array)
    loaded = read_segment(path, expected=entry)
    assert loaded.dtype == array.dtype
    assert np.array_equal(loaded, array)
    assert not loaded.flags.writeable


def test_object_column_round_trip(tmp_path):
    path = str(tmp_path / "obj.seg")
    values = np.empty(5, dtype=object)
    values[:] = ["a", 1, None, 2.5, ("t", 1)]
    entry = write_segment(path, "obj", values)
    assert entry["kind"] == "pickle"
    loaded = read_segment(path, expected=entry)
    assert loaded.dtype == object
    assert list(loaded) == list(values)


def test_fixed_width_read_is_a_memmap(tmp_path):
    path = str(tmp_path / "col.seg")
    entry = write_segment(path, "col", np.arange(1000))
    loaded = read_segment(path, expected=entry)
    assert isinstance(loaded, np.memmap)
    assert live_memmap_count() >= 1
    copied = read_segment(path, expected=entry, mmap=False)
    assert not isinstance(copied, np.memmap)
    assert np.array_equal(copied, loaded)
    del loaded, copied  # the autouse fixture asserts the count drains to 0


def test_bit_flip_fails_typed_with_block_location(tmp_path):
    path = str(tmp_path / "col.seg")
    write_segment(path, "col", np.arange(4096, dtype=np.int64), block_bytes=1024)
    data = bytearray(open(path, "rb").read())
    data[-7] ^= 0x10  # flip one payload bit in the last block
    open(path, "wb").write(bytes(data))
    with pytest.raises(CorruptSegmentError) as excinfo:
        read_segment(path)
    assert "checksum mismatch in block" in str(excinfo.value)


def test_truncated_segment_fails_typed(tmp_path):
    path = str(tmp_path / "col.seg")
    write_segment(path, "col", np.arange(100))
    data = open(path, "rb").read()
    open(path, "wb").write(data[: len(data) // 2])
    with pytest.raises(CorruptSegmentError):
        read_segment(path)


def test_not_a_segment_file_fails_typed(tmp_path):
    path = str(tmp_path / "col.seg")
    open(path, "wb").write(b"definitely not a segment file at all")
    with pytest.raises(CorruptSegmentError) as excinfo:
        read_segment(path)
    assert "bad magic" in str(excinfo.value)


def test_manifest_expectation_mismatch_fails_typed(tmp_path):
    """A self-consistent segment swapped in for another still fails."""
    path = str(tmp_path / "col.seg")
    entry = write_segment(path, "col", np.arange(50))
    write_segment(path, "col", np.arange(50) + 1)  # same rows, other payload
    with pytest.raises(CorruptSegmentError) as excinfo:
        read_segment(path, expected=entry)
    assert "manifest payload CRC mismatch" in str(excinfo.value)
    entry_other = dict(entry)
    entry_other["rows"] = 49
    with pytest.raises(CorruptSegmentError):
        read_segment(path, expected=entry_other)


def test_empty_column_round_trip(tmp_path):
    path = str(tmp_path / "empty.seg")
    entry = write_segment(path, "empty", np.empty(0, dtype=np.float64))
    loaded = read_segment(path, expected=entry)
    assert loaded.size == 0


def test_atomic_write_replaces_not_appends(tmp_path):
    path = str(tmp_path / "blob")
    atomic_write_bytes(path, b"first contents, quite long")
    atomic_write_bytes(path, b"second")
    assert open(path, "rb").read() == b"second"
    assert not os.path.exists(path + ".tmp")


def test_header_crc_table_covers_every_block(tmp_path):
    path = str(tmp_path / "col.seg")
    payload = np.arange(1024, dtype=np.int64)
    write_segment(path, "col", payload, block_bytes=1000)
    data = open(path, "rb").read()
    (header_len,) = struct.unpack_from("<Q", data, len(SEGMENT_MAGIC))
    import json

    header = json.loads(data[len(SEGMENT_MAGIC) + 8 : len(SEGMENT_MAGIC) + 8 + header_len])
    raw = payload.tobytes()
    assert len(header["block_crcs"]) == (len(raw) + 999) // 1000
    assert header["block_crcs"][0] == zlib.crc32(raw[:1000])
