"""Warm restart of a QueryService from durable storage.

The headline contract: persist a served workload, kill the service, reopen
from the manifest — the first repeated query is answered as a warm hit
(``plan_cache: "restored"``) with **zero** UDF evaluations and answers
bitwise identical to the pre-restart warm run at the same seed.  Stale or
corrupt warm state must never poison answers: it is skipped (or
quarantined) and the service starts cold.
"""

import os

import pytest

from repro.datasets.registry import load_dataset
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.storage import CatalogStore
from repro.serving import QueryService, ServiceConfig


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("lending_club", random_state=42, scale=0.03)


def _query(dataset, udf):
    return SelectQuery(
        table=dataset.table.name,
        predicate=UdfPredicate(udf),
        alpha=0.8,
        beta=0.8,
        rho=0.8,
        correlated_column="grade",
    )


def _fresh_service(dataset, storage_dir):
    catalog = Catalog()
    catalog.register_table(dataset.table)
    udf = dataset.make_udf("served")
    catalog.register_udf(udf)
    service = QueryService(
        Engine(catalog), config=ServiceConfig(storage_dir=storage_dir)
    )
    return service, udf


def _restarted_service(dataset, storage_dir):
    """Reopen the catalog from the manifest, as a fresh process would."""
    catalog, reports = CatalogStore(storage_dir).open()
    udf = dataset.make_udf("served")  # UDFs are code: re-registered, cold
    catalog.register_udf(udf)
    service = QueryService(
        Engine(catalog), config=ServiceConfig(storage_dir=storage_dir)
    )
    return service, udf, reports


def _serve_and_close(dataset, storage_dir, seed=7):
    """Cold + warm runs at ``seed``, then a clean shutdown (persists state)."""
    service, udf = _fresh_service(dataset, str(storage_dir))
    cold = service.submit(_query(dataset, udf), seed=0)
    assert cold.metadata["plan_cache"] == "miss"
    warm = service.submit(_query(dataset, udf), seed=seed)
    assert warm.metadata["plan_cache"] == "hit"
    service.close()
    return warm


class TestWarmRestart:
    def test_restart_answers_restored_hit_with_zero_udf_work(
        self, tmp_path, dataset
    ):
        warm = _serve_and_close(dataset, tmp_path, seed=7)
        service, udf, reports = _restarted_service(dataset, str(tmp_path))
        try:
            assert reports[dataset.table.name].generation == 0
            restored = service.submit(_query(dataset, udf), seed=7)
            assert restored.metadata["plan_cache"] == "restored"
            assert restored.metadata["udf_cache"]["calls"] == 0
            assert list(restored.row_ids) == list(warm.row_ids)
            assert service.metrics()["plan_restored"] == 1
            storage = service.stats().storage
            assert storage["restored_plans"] >= 1
            assert storage["restored_udf_memos"] == 1
            assert storage["restore_errors"] == 0
        finally:
            service.close()

    def test_restored_flag_clears_after_first_hit(self, tmp_path, dataset):
        _serve_and_close(dataset, tmp_path, seed=7)
        service, udf, _ = _restarted_service(dataset, str(tmp_path))
        try:
            assert service.submit(_query(dataset, udf), seed=7).metadata[
                "plan_cache"
            ] == "restored"
            again = service.submit(_query(dataset, udf), seed=7)
            assert again.metadata["plan_cache"] == "hit"
            assert service.metrics()["plan_restored"] == 1
        finally:
            service.close()

    def test_stale_signature_skips_warm_state_and_starts_cold(
        self, tmp_path, dataset
    ):
        _serve_and_close(dataset, tmp_path, seed=7)
        catalog, _ = CatalogStore(str(tmp_path)).open()
        table = catalog.table(dataset.table.name)
        # Churn the reopened table before the service comes up: its
        # signature no longer matches the persisted warm state.
        delta = {
            name: table.column_values(name, allow_hidden=True)[:3]
            for name in table.schema.column_names
        }
        table.append_columns(delta)
        udf = dataset.make_udf("served")
        catalog.register_udf(udf)
        service = QueryService(
            Engine(catalog), config=ServiceConfig(storage_dir=str(tmp_path))
        )
        try:
            storage = service.stats().storage
            assert storage["restored_plans"] == 0
            assert storage["restore_errors"] >= 1
            result = service.submit(_query(dataset, udf), seed=7)
            assert result.metadata["plan_cache"] == "miss"
        finally:
            service.close()

    def test_corrupt_warm_blob_is_quarantined_and_service_starts_cold(
        self, tmp_path, dataset
    ):
        _serve_and_close(dataset, tmp_path, seed=7)
        store = CatalogStore(str(tmp_path)).table_store(dataset.table.name)
        blob = os.path.join(store.warm_dir, "state.blob")
        data = bytearray(open(blob, "rb").read())
        data[len(data) // 2] ^= 0x20
        open(blob, "wb").write(bytes(data))
        service, udf, _ = _restarted_service(dataset, str(tmp_path))
        try:
            storage = service.stats().storage
            assert storage["restore_errors"] >= 1
            assert storage["restored_plans"] == 0
            assert storage["checksum_failures"] >= 1
            assert os.listdir(store.quarantine_dir)  # blob moved aside
            result = service.submit(_query(dataset, udf), seed=7)
            assert result.metadata["plan_cache"] == "miss"
        finally:
            service.close()

    def test_save_warm_state_requires_configured_storage(self, dataset):
        catalog = Catalog()
        catalog.register_table(dataset.table)
        udf = dataset.make_udf("served")
        catalog.register_udf(udf)
        service = QueryService(Engine(catalog))
        try:
            assert service.stats().storage == {}
            with pytest.raises(ValueError):
                service.save_warm_state()
        finally:
            service.close()

    def test_explicit_save_counts_and_close_saves_again(self, tmp_path, dataset):
        service, udf = _fresh_service(dataset, str(tmp_path))
        service.submit(_query(dataset, udf), seed=0)
        counts = service.save_warm_state()
        assert counts["plans"] >= 1
        assert service.stats().storage["warm_state_saved"] == 1
        service.close()
        store = CatalogStore(str(tmp_path)).table_store(dataset.table.name)
        assert store.exists()
        assert os.path.exists(os.path.join(store.warm_dir, "state.blob"))
