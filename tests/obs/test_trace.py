"""Tests for per-query tracing: span trees, ledger deltas, sinks."""

from __future__ import annotations

import io
import json
import threading

from repro.db.udf import CostLedger
from repro.obs import CollectingTraceSink, JsonLinesTraceSink, SlowQueryLog, Trace
from repro.obs.trace import NULL_SPAN, current_span, current_trace, span


class TestSpanTree:
    def test_spans_nest_under_the_active_context(self):
        trace = Trace("query", query_id=7)
        trace.activate()
        try:
            with span("outer") as outer:
                with span("inner") as inner:
                    assert current_span() is inner
                    assert current_trace() is trace
                assert current_span() is outer
        finally:
            trace.finish()
        by_name = {s.name: s for s in trace.spans}
        assert by_name["outer"].parent_id == trace.root.span_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert all(s.duration_s is not None for s in trace.spans)
        assert trace.duration_ms is not None

    def test_span_without_active_trace_is_noop(self):
        assert current_span() is None
        with span("nowhere") as nothing:
            assert nothing is NULL_SPAN
            nothing.add("udf_evals", 5)  # must not raise or record anywhere
            nothing.annotate("k", "v")
        assert current_trace() is None

    def test_ledger_deltas_attach_to_the_span(self):
        trace = Trace("query")
        trace.activate()
        ledger = CostLedger()
        try:
            with span("sampling", ledger=ledger):
                ledger.charge_retrieval(10)
                ledger.charge_evaluation(4)
            with span("execute", ledger=ledger):
                ledger.charge_evaluation(6)
        finally:
            trace.finish()
        by_name = {s.name: s for s in trace.spans}
        assert by_name["sampling"].work == {"retrievals": 10, "udf_evals": 4}
        assert by_name["execute"].work == {"udf_evals": 6}
        assert trace.work_total("udf_evals") == ledger.evaluated_count == 10

    def test_work_total_ignores_non_numeric_annotations(self):
        trace = Trace("query")
        trace.root.add("udf_evals", 3)
        trace.root.annotate("column", "grade")
        assert trace.work_total("udf_evals") == 3
        assert trace.work_total("column") == 0.0

    def test_add_skips_zero_amounts(self):
        trace = Trace("query")
        trace.root.add("udf_evals", 0)
        assert trace.root.work == {}

    def test_finish_closes_open_spans_once(self):
        trace = Trace("query")
        opened = trace._new_span("left-open", parent=trace.root, ledger=None)
        trace.finish()
        first_duration = opened.duration_s
        assert first_duration is not None
        trace.finish()  # idempotent: closed spans are not re-closed
        assert opened.duration_s == first_duration

    def test_contextvar_isolation_across_threads(self):
        """A thread that never inherited a context sees no active trace."""
        trace = Trace("query")
        trace.activate()
        seen = {}

        def probe():
            seen["span"] = current_span()

        try:
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        finally:
            trace.finish()
        assert seen["span"] is None

    def test_two_traces_in_two_threads_do_not_cross(self):
        results = {}

        def run(name):
            trace = Trace(name)
            trace.activate()
            try:
                with span("work") as s:
                    s.add("udf_evals", 1)
                    assert current_trace() is trace
            finally:
                trace.finish()
            results[name] = trace

        threads = [threading.Thread(target=run, args=(f"t{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name, trace in results.items():
            assert trace.name == name
            assert len(trace.spans) == 2  # root + its own "work" span only
            assert trace.work_total("udf_evals") == 1

    def test_format_tree_orders_shard_spans_deterministically(self):
        trace = Trace("query")
        trace.activate()
        try:
            with span("execute") as execute:
                # create out of order, as parallel scheduling would
                for index in (2, 0, 1):
                    with trace.span(f"shard:{index}", parent=execute):
                        pass
        finally:
            trace.finish()
        rendered = trace.format_tree()
        lines = [line.strip().split()[0] for line in rendered.splitlines()]
        assert lines == ["query", "execute", "shard:0", "shard:1", "shard:2"]

    def test_to_dict_roundtrips_through_json(self):
        trace = Trace("query", query_id=3)
        trace.activate()
        try:
            with span("solve") as s:
                s.annotate("used_fallback", True)
        finally:
            trace.finish()
        payload = json.loads(json.dumps(trace.to_dict()))
        assert payload["trace"] == "query"
        assert payload["query_id"] == 3
        names = [s["name"] for s in payload["spans"]]
        assert names == ["query", "solve"]


class TestSinks:
    def _finished_trace(self, name="query", query_id=1):
        trace = Trace(name, query_id=query_id)
        trace.activate()
        with span("work"):
            pass
        return trace.finish()

    def test_collecting_sink_capacity_and_slowest(self):
        sink = CollectingTraceSink(capacity=2)
        traces = [self._finished_trace(query_id=i) for i in range(3)]
        for t in traces:
            sink(t)
        assert [t.query_id for t in sink.traces] == [1, 2]
        slowest = sink.slowest()
        assert slowest is max(traces[1:], key=lambda t: t.duration_ms)
        sink.clear()
        assert sink.traces == [] and sink.slowest() is None

    def test_jsonlines_sink_writes_one_object_per_trace(self):
        stream = io.StringIO()
        sink = JsonLinesTraceSink(stream)
        sink(self._finished_trace(query_id=1))
        sink(self._finished_trace(query_id=2))
        lines = stream.getvalue().strip().splitlines()
        assert [json.loads(line)["query_id"] for line in lines] == [1, 2]

    def test_jsonlines_sink_file_target(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        sink = JsonLinesTraceSink(str(path))
        sink(self._finished_trace())
        sink.close()
        assert json.loads(path.read_text().strip())["trace"] == "query"

    def test_slow_query_log_filters_and_orders(self, tmp_path):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2, path=str(tmp_path / "slow.jsonl"))
        traces = [self._finished_trace(query_id=i) for i in range(3)]
        for t in traces:
            log(t)
        entries = log.entries
        assert len(entries) == 2
        assert entries[0].duration_ms >= entries[1].duration_ms
        assert "query_id" in log.dump()
        retained = [json.loads(line) for line in log.to_json_lines().strip().splitlines()]
        assert len(retained) == 2
        # every arriving slow trace was appended to the file, pre-trim
        on_disk = (tmp_path / "slow.jsonl").read_text().strip().splitlines()
        assert len(on_disk) == 3

    def test_slow_query_log_threshold_excludes_fast_traces(self):
        log = SlowQueryLog(threshold_ms=10_000.0)
        log(self._finished_trace())
        assert log.entries == []
        assert log.to_json_lines() == ""
