"""Tests for the labelled metrics registry and its exporters."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_json,
    prometheus_text,
)
from repro.obs.metrics import Counter, Gauge, Histogram, counter as global_counter


@pytest.fixture(autouse=True)
def _restore_null_registry():
    yield
    disable_metrics()


class TestCounterAndGauge:
    def test_counter_increments(self):
        c = Counter("c_total")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_counter_rejects_negative(self):
        c = Counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0

    def test_gauge_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5

    def test_counter_thread_safety(self):
        c = Counter("c_total")

        def hammer():
            for _ in range(5000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestHistogram:
    def test_empty_histogram(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        assert h.count == 0
        assert h.quantile(0.5) is None
        assert h.mean is None
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert snap["p50"] is None and snap["p99"] is None

    def test_single_sample_is_exact_at_every_quantile(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        h.observe(3.3)
        for q in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3.3)
        assert h.mean == pytest.approx(3.3)

    def test_bucket_boundary_observations_are_exact(self):
        """Values landing exactly on bucket bounds use ``le`` semantics."""
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (1.0, 2.0, 5.0):
            h.observe(value)
        assert h.quantile(1 / 3) == pytest.approx(1.0)
        assert h.quantile(2 / 3) == pytest.approx(2.0)
        assert h.quantile(1.0) == pytest.approx(5.0)
        # snapshot buckets: one observation each, nothing in +inf
        snap = h.snapshot()
        assert snap["buckets"] == {"1.0": 1, "2.0": 1, "5.0": 1, "+inf": 0}

    def test_overflow_bucket_clamps_to_observed_max(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(50.0)
        assert h.snapshot()["buckets"]["+inf"] == 1

    def test_quantile_within_one_bucket_width(self):
        h = Histogram("h", buckets=tuple(float(b) for b in range(1, 11)))
        values = [0.5 + i * 0.093 for i in range(100)]
        for v in values:
            h.observe(v)
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.99):
            exact = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
            assert abs(h.quantile(q) - exact) <= 1.0  # one bucket width

    def test_percentiles_helper(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.5)
        assert set(h.percentiles(50, 99)) == {"p50", "p99"}

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))  # duplicated bound
        # empty/omitted buckets fall back to the default latency bounds
        from repro.obs import DEFAULT_LATENCY_BUCKETS

        assert Histogram("h", buckets=()).buckets == DEFAULT_LATENCY_BUCKETS
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestRegistry:
    def test_same_identity_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", udf="f", table="t")
        b = registry.counter("x_total", table="t", udf="f")  # kwargs reordered
        assert a is b
        assert registry.counter("x_total", udf="g") is not a

    def test_label_values_are_stringified(self):
        registry = MetricsRegistry()
        registry.counter("x_total", shard=3).inc()
        assert registry.snapshot()["counters"] == {'x_total{shard="3"}': 1.0}

    def test_snapshot_sections(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.register_collector("caches", lambda: {"hits": 3, "misses": 1})
        snap = registry.snapshot()
        assert snap["counters"] == {"c_total": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["collected"] == {"caches": {"hits": 3, "misses": 1}}

    def test_histogram_buckets_apply_only_at_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=(1.0, 2.0))
        again = registry.histogram("h", buckets=(9.0,))
        assert again is first
        assert first.buckets == (1.0, 2.0)

    def test_concurrent_creation_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(registry.counter("racy_total", k="v"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestGlobalRegistry:
    def test_disabled_by_default(self):
        assert get_registry() is NULL_REGISTRY
        assert get_registry().enabled is False
        # no-op instruments: incrementing must not create state anywhere
        global_counter("ghost_total", a="b").inc(100)
        assert get_registry().snapshot() == {}

    def test_enable_disable_roundtrip(self):
        live = enable_metrics()
        assert get_registry() is live
        assert live.enabled is True
        global_counter("real_total").inc()
        assert live.snapshot()["counters"] == {"real_total": 1.0}
        disable_metrics()
        assert get_registry() is NULL_REGISTRY

    def test_enable_with_existing_registry(self):
        mine = MetricsRegistry()
        assert enable_metrics(mine) is mine
        assert get_registry() is mine


class TestExporters:
    def test_prometheus_text_null_registry(self):
        assert "metrics disabled" in prometheus_text(NULL_REGISTRY)

    def test_prometheus_text_layout(self):
        registry = MetricsRegistry()
        registry.counter("req_total", path="warm").inc(3)
        registry.gauge("rows", table="t").set(10)
        registry.histogram("lat_seconds", buckets=(1.0, 2.0)).observe(1.5)
        text = prometheus_text(registry)
        assert "# TYPE req_total counter" in text
        assert 'req_total{path="warm"} 3' in text
        assert 'rows{table="t"} 10' in text
        # cumulative buckets + the implicit +Inf bound, then sum/count
        assert 'lat_seconds_bucket{le="1.0"} 0' in text
        assert 'lat_seconds_bucket{le="2.0"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 1.5" in text
        assert "lat_seconds_count 1" in text

    def test_prometheus_text_collected_metrics(self):
        registry = MetricsRegistry()
        registry.register_collector("plans", lambda: {"hits": 4, "note": "text"})
        text = prometheus_text(registry)
        assert "plans_hits 4" in text
        assert "note" not in text  # non-numeric collector values are skipped

    def test_metrics_json_is_stable_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        payload = json.loads(metrics_json(registry.snapshot()))
        assert payload["counters"] == {"c_total": 1.0}
