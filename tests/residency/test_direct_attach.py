"""Direct segment attach: workers map durable files, skipping shm exports.

When a table is served from lazy durable segments, the process-pool
executor hands workers ``(path, offset, dtype)`` coordinates instead of
copying columns into ``shared_memory`` — zero export segments, bitwise
identical results.  Tables that are not fully lazy-durable (in-memory,
pickled object columns, materialised after degrade) fall back to the
shm path, so nothing ever silently breaks.
"""

import numpy as np
import pytest

from repro.core.parallel import ParallelBatchExecutor
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.core.procpool import ProcessPoolBatchExecutor
from repro.db.residency import durable_span_exports
from repro.db.shm import exported_segment_count
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.obs.metrics import MetricsRegistry, disable_metrics, enable_metrics

WORKERS = 2


def _mixed_plan(index):
    regimes = [(0.0, 0.0), (1.0, 1.0), (0.6, 0.0), (1.0, 0.5), (0.7, 0.8)]
    decisions = {}
    for code, value in enumerate(index.values):
        retrieve, evaluate = regimes[code % len(regimes)]
        decisions[value] = GroupDecision(retrieve=retrieve, evaluate=retrieve * evaluate)
    return ExecutionPlan(decisions=decisions)


def _execute(table, executor_cls, udf, workers, seed=7):
    index = table.group_index("A")
    plan = _mixed_plan(index)
    ledger = CostLedger()
    executor = executor_cls(random_state=seed, max_workers=workers)
    result = executor.execute(table, index, udf, plan, ledger)
    return result, ledger


class TestDurableSpanExports:
    def test_lazy_sharded_numeric_columns_export_blocks(
        self, sharded_table, make_lazy
    ):
        lazy, _, _ = make_lazy(sharded_table)
        exports = durable_span_exports(lazy, ["f", "amount"])
        assert exports is not None
        assert len(exports) == len(lazy.shards)
        for export in exports:
            for block in export.columns.values():
                assert block.shm_name is None
                assert block.path is not None
                assert block.offset >= 0

    def test_in_memory_table_is_not_directly_attachable(self, sharded_table):
        assert durable_span_exports(sharded_table, ["f"]) is None

    def test_pickled_object_column_falls_back(self, make_lazy):
        # Mixed-type values have no fixed-width dtype: the segment is
        # pickled, so there is no (path, offset, dtype) block to attach.
        from repro.db.table import Table

        source = Table.from_columns(
            "objtab",
            {"A": ["a", 1, True, "b"] * 60, "f": [True, False] * 120},
            hidden_columns=["f"],
        )
        lazy, _, _ = make_lazy(source)
        assert durable_span_exports(lazy, ["A"]) is None
        assert durable_span_exports(lazy, ["f"]) is not None

    def test_materialised_table_falls_back(self, table, make_lazy):
        lazy, _, _ = make_lazy(table)
        lazy._materialise("test")
        assert durable_span_exports(lazy, ["f"]) is None


class TestProcessPoolDirectAttach:
    def test_procpool_over_lazy_durable_is_bitwise_serial_with_zero_exports(
        self, sharded_table, make_lazy
    ):
        lazy, manager, store = make_lazy(sharded_table, budget_bytes=3000)
        eager, _ = store.open()
        serial_udf = UserDefinedFunction.from_label_column("da_serial", "f")
        remote_udf = UserDefinedFunction.from_label_column("da_remote", "f")
        registry = enable_metrics(MetricsRegistry())
        try:
            serial, serial_ledger = _execute(
                eager, ParallelBatchExecutor, serial_udf, workers=1
            )
            remote, remote_ledger = _execute(
                lazy, ProcessPoolBatchExecutor, remote_udf, workers=WORKERS
            )
            counters = registry.snapshot()["counters"]
            attached = [
                key for key in counters if "direct_attach" in key
            ]
            assert attached and counters[attached[0]] >= 1
        finally:
            disable_metrics()
        assert np.array_equal(
            np.asarray(serial.returned_row_ids),
            np.asarray(remote.returned_row_ids),
        )
        assert remote_ledger.retrieved_count == serial_ledger.retrieved_count
        assert remote_ledger.evaluated_count == serial_ledger.evaluated_count
        assert remote_udf.counter_snapshot() == serial_udf.counter_snapshot()
        assert remote_udf._cache == serial_udf._cache
        # The proof of direct attach: the run exported nothing through shm.
        assert exported_segment_count() == 0
        assert manager.resident_bytes <= 3000
