"""ResidencyManager: budget enforcement, LRU order, pins, pressure levels."""

import numpy as np
import pytest

from repro.db.residency import (
    PRESSURE_LEVELS,
    ResidencyManager,
    residency_counters,
)


def _touch(table, column):
    """Map one column's segment (whole-column read, no pin held after)."""
    return table.column_array(column, allow_hidden=True)


def _handle(table, column):
    return table.segment_handle(column)


class TestBudgetEnforcement:
    def test_unbounded_manager_tracks_without_evicting(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table)
        for column in lazy.schema.column_names:
            _touch(lazy, column)
        assert manager.mapped_segments == len(lazy.schema.column_names)
        assert manager.resident_bytes > 0
        assert manager.snapshot()["evictions"] == 0
        assert manager.pressure_level == "ok"

    def test_resident_bytes_charge_actual_nbytes(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table)
        array = _touch(lazy, "amount")
        assert manager.resident_bytes == _handle(lazy, "amount").nbytes
        assert _handle(lazy, "amount").nbytes == array.nbytes

    def test_over_budget_mappings_are_evicted(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=2500)
        for column in lazy.schema.column_names:
            _touch(lazy, column)
        assert manager.resident_bytes <= 2500
        assert manager.snapshot()["evictions"] > 0
        assert residency_counters()["evictions"] > 0

    def test_eviction_order_is_lru(self, table, make_lazy):
        # float64 'amount' and int64 'count' are 1920 bytes each at 240
        # rows; a 4000-byte budget holds both, a third map evicts the LRU.
        lazy, manager, _ = make_lazy(table, budget_bytes=4000)
        _touch(lazy, "amount")
        _touch(lazy, "count")
        _touch(lazy, "amount")  # refresh: 'count' is now least recent
        _touch(lazy, "f")       # pickled bool column: forces one eviction
        assert not _handle(lazy, "count").is_resident
        assert _handle(lazy, "amount").is_resident

    def test_evicted_segment_refaults_on_next_touch(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=2000)
        first = _touch(lazy, "amount")
        _touch(lazy, "count")  # evicts 'amount'
        assert not _handle(lazy, "amount").is_resident
        again = _touch(lazy, "amount")
        assert np.array_equal(np.asarray(first), np.asarray(again))
        assert manager.snapshot()["refaults"] >= 1
        assert residency_counters()["refaults"] >= 1

    def test_arrays_held_by_callers_survive_eviction(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=2000)
        held = _touch(lazy, "amount")
        expected = held.tolist()
        _touch(lazy, "count")  # evicts 'amount'
        assert held.tolist() == expected  # the memmap lives while referenced

    def test_set_budget_shrink_evicts_immediately(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table)
        _touch(lazy, "amount")
        _touch(lazy, "count")
        assert manager.mapped_segments == 2
        manager.set_budget(2000)
        assert manager.resident_bytes <= 2000
        assert manager.mapped_segments == 1

    def test_evict_all_drops_every_unpinned_mapping(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table)
        for column in lazy.schema.column_names:
            _touch(lazy, column)
        dropped = manager.evict_all()
        assert dropped == len(lazy.schema.column_names)
        assert manager.resident_bytes == 0
        assert manager.mapped_segments == 0

    def test_peak_resident_bytes_is_monotonic(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=2000)
        for column in lazy.schema.column_names:
            _touch(lazy, column)
        peak = manager.peak_resident_bytes
        assert peak >= manager.resident_bytes
        manager.evict_all()
        assert manager.peak_resident_bytes == peak


class TestPins:
    def test_pinned_segment_is_never_evicted(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=2000)
        handle = _handle(lazy, "amount")
        with handle.pinned():
            handle.array()
            _touch(lazy, "count")  # over budget, but 'amount' is pinned
            assert handle.is_resident
            assert manager.pinned_segments == 1
        # Unpinning re-enforces the budget.
        assert manager.resident_bytes <= 2000
        assert manager.pinned_segments == 0

    def test_only_pins_left_means_critical_pressure(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=1000)
        handle = _handle(lazy, "amount")  # 1920 bytes > the whole budget
        with handle.pinned():
            handle.array()
            assert manager.resident_bytes > 1000
            assert manager.pressure_level == "critical"
        assert manager.resident_bytes <= 1000
        assert manager.pressure_level == "ok"

    def test_gather_pins_only_for_the_duration(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=2000)
        values = lazy.gather_column("amount", [0, 5, 9])
        assert values.shape == (3,)
        assert manager.pinned_segments == 0


class TestPressureCallbacks:
    def test_levels_are_edge_triggered_in_order(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=4000, watermark=0.9)
        seen = []
        manager.add_pressure_callback(seen.append)
        _touch(lazy, "amount")  # 1920 / 4000: ok
        assert seen == []
        _touch(lazy, "count")  # 3840 >= 3600: high
        assert seen == ["high"]
        manager.evict_all()
        assert seen[-1] == "ok"
        handle = _handle(lazy, "amount")
        with handle.pinned():
            handle.array()
            manager.set_budget(1000)  # 1920 pinned > budget: critical
            assert seen[-1] == "critical"
        # Unpinning lets enforcement reclaim: back to ok.
        assert seen[-1] == "ok"
        assert all(level in PRESSURE_LEVELS for level in seen)

    def test_callback_exceptions_never_break_residency(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=2000)

        def explode(level):
            raise RuntimeError("pressure callback bug")

        manager.add_pressure_callback(explode)
        for column in lazy.schema.column_names:
            _touch(lazy, column)  # crosses levels; must not raise
        assert manager.resident_bytes <= 2000


class TestSnapshotAndValidation:
    def test_snapshot_has_the_stats_contract_keys(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table, budget_bytes=5000)
        _touch(lazy, "amount")
        snapshot = manager.snapshot()
        assert set(snapshot) == {
            "budget_bytes",
            "resident_bytes",
            "peak_resident_bytes",
            "mapped_segments",
            "pinned_segments",
            "pressure_level",
            "maps",
            "evictions",
            "refaults",
            "map_faults",
            "evict_faults",
            "map_seconds_total",
        }
        assert snapshot["budget_bytes"] == 5000
        assert snapshot["maps"] == 1
        assert snapshot["map_seconds_total"] >= 0.0

    @pytest.mark.parametrize("budget", [0, -1])
    def test_budget_must_be_positive(self, budget):
        with pytest.raises(ValueError):
            ResidencyManager(budget_bytes=budget)
        manager = ResidencyManager()
        with pytest.raises(ValueError):
            manager.set_budget(budget)

    @pytest.mark.parametrize("watermark", [0.0, -0.5, 1.5])
    def test_watermark_must_be_a_fraction(self, watermark):
        with pytest.raises(ValueError):
            ResidencyManager(watermark=watermark)
