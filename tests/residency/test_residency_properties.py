"""Property tests: residency budgets and eviction are invisible to queries.

For *any* byte budget — including pathologically small ones that cannot
hold a single segment — and *any* interleaved schedule of eviction
pressure (random gathers, ``evict_all`` storms, budget shrinks, and
evictions fired from inside the UDF mid-pass), a query over the lazily
opened table must be bitwise identical to the unbounded eager run:
identical row ids, identical work counters, identical UDF memo cache.
This is the acceptance property for bounded-memory serving.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import QueryConstraints
from repro.core.executor import BatchExecutor
from repro.core.pipeline import IntelSample
from repro.db.residency import ResidencyManager
from repro.db.sharding import ShardedTable
from repro.db.storage import TableStore
from repro.db.udf import CostLedger, UserDefinedFunction

from conftest import build_columns, table_cells

_ROWS = 320


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """Persist the table once; every example reopens it fresh."""
    directory = str(tmp_path_factory.mktemp("residency-props") / "ptab")
    source = ShardedTable.from_columns(
        "ptab", build_columns(rows=_ROWS, seed=11), num_shards=4, hidden_columns=["f"]
    )
    TableStore(directory).save(source)
    return directory


def _reveal_f(manager=None, every=0):
    """The label UDF, optionally firing an eviction storm mid-pass."""
    state = {"calls": 0}

    def func(row):
        state["calls"] += 1
        if manager is not None and every and state["calls"] % every == 0:
            manager.evict_all()
        return bool(row["f"])

    return func


def _run_query(table, tag, manager=None, evict_every=0):
    udf = UserDefinedFunction(f"prop_{tag}", _reveal_f(manager, evict_every))
    ledger = CostLedger()
    strategy = IntelSample(
        random_state=4242,
        correlated_column="A",
        executor_factory=lambda rng: BatchExecutor(random_state=rng),
    )
    result = strategy.answer(
        table, udf, QueryConstraints(alpha=0.8, beta=0.8, rho=0.8), ledger
    )
    return {
        "row_ids": sorted(int(r) for r in result.row_ids),
        "retrieved": ledger.retrieved_count,
        "evaluated": ledger.evaluated_count,
        "counters": udf.counter_snapshot(),
        "memo": sorted(udf._cache.items()),
    }


def _apply_pressure(table, manager, rng, action):
    """One step of the eviction-pressure schedule (all semantics-free)."""
    columns = table.schema.column_names
    if action == 0:
        manager.evict_all()
    elif action == 1 and manager.budget_bytes is not None:
        manager.set_budget(max(1, manager.budget_bytes // 2))
    elif action == 2:
        ids = rng.choice(_ROWS, size=32, replace=False)
        table.gather_column(columns[rng.integers(len(columns))], ids, allow_hidden=True)
    elif action == 3:
        table.column_array(columns[rng.integers(len(columns))], allow_hidden=True)
    elif action == 4:
        manager.set_budget(200_000)
    else:
        table.group_index("A")


@settings(max_examples=25, deadline=None)
@given(
    budget=st.one_of(
        st.none(),
        st.integers(min_value=1, max_value=2000),  # pathologically small
        st.integers(min_value=10_000, max_value=200_000),
    ),
    schedule=st.lists(st.integers(min_value=0, max_value=5), max_size=6),
    evict_every=st.sampled_from([0, 7, 31]),
)
def test_any_budget_and_pressure_schedule_is_bitwise_invisible(
    store_dir, budget, schedule, evict_every
):
    store = TableStore(store_dir)
    eager, _ = store.open()
    baseline = _run_query(eager, "eager")

    manager = ResidencyManager(budget_bytes=budget)
    lazy, _ = store.open(residency=manager)
    rng = np.random.default_rng(17)
    for action in schedule:
        _apply_pressure(lazy, manager, rng, action)
    bounded = _run_query(lazy, "lazy", manager=manager, evict_every=evict_every)

    assert bounded == baseline
    assert table_cells(lazy) == table_cells(eager)
    if manager.budget_bytes is not None:
        assert manager.resident_bytes <= manager.budget_bytes
    manager.evict_all()


@settings(max_examples=15, deadline=None)
@given(budget=st.integers(min_value=1, max_value=5000))
def test_tiny_budgets_thrash_but_never_change_cells(store_dir, budget):
    store = TableStore(store_dir)
    eager, _ = store.open()
    manager = ResidencyManager(budget_bytes=budget)
    lazy, _ = store.open(residency=manager)
    assert table_cells(lazy) == table_cells(eager)
    assert manager.resident_bytes <= budget
    manager.evict_all()
