"""QueryService under memory pressure: budgets, watermarks, shedding.

The serving layer discovers the residency manager behind any lazily
opened catalog table, applies ``ServiceConfig.memory_budget_bytes``,
reports the full residency snapshot under ``stats().storage``, and
degrades in the documented order — caches first (``high``), then typed
``Overloaded`` shedding of async admissions (``critical``) — while
answers stay bitwise identical to an unbounded service.
"""

import asyncio

import pytest

from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.residency import ResidencyManager
from repro.db.sharding import ShardedTable
from repro.db.storage import TableStore
from repro.db.udf import UserDefinedFunction
from repro.serving import Overloaded, QueryService, ServiceConfig

from conftest import build_columns, numeric_columns


def _service_over(table, tag, config=None):
    catalog = Catalog()
    catalog.register_table(table)
    udf = UserDefinedFunction.from_label_column(f"press_{tag}", "f")
    catalog.register_udf(udf)
    service = QueryService(Engine(catalog), config=config or ServiceConfig())
    query = SelectQuery(
        table=table.name,
        predicate=UdfPredicate(udf),
        alpha=0.8,
        beta=0.8,
        rho=0.8,
        correlated_column="A",
    )
    return service, query


@pytest.fixture
def lazy_pair(tmp_path):
    """Factory: (lazy table, its manager, eager twin) over one store.

    A factory (not a prebuilt tuple) so the tables are locals of the test
    frame — they become garbage before the leak gate sweeps memmaps.
    """

    def _build():
        source = ShardedTable.from_columns(
            "ptab", build_columns(rows=320, seed=9), num_shards=4, hidden_columns=["f"]
        )
        store = TableStore(str(tmp_path / "ptab"))
        store.save(source)
        manager = ResidencyManager()
        lazy, _ = store.open(residency=manager)
        eager, _ = store.open()
        return lazy, manager, eager

    return _build


class TestAdoption:
    def test_service_applies_config_budget_to_discovered_manager(self, lazy_pair):
        lazy, manager, _ = lazy_pair()
        service, _ = _service_over(
            lazy, "adopt", ServiceConfig(memory_budget_bytes=50_000)
        )
        try:
            assert manager.budget_bytes == 50_000
            residency = service.stats().storage["residency"]
            assert residency["budget_bytes"] == 50_000
            assert residency["pressure_level"] == "ok"
        finally:
            service.close()

    def test_stats_omit_residency_without_a_lazy_table(self, lazy_pair):
        _, _, eager = lazy_pair()
        service, _ = _service_over(eager, "plain")
        try:
            assert "residency" not in service.stats().storage
        finally:
            service.close()

    def test_bounded_submit_matches_unbounded_bitwise(self, lazy_pair):
        lazy, _, eager = lazy_pair()
        bounded_svc, bounded_q = _service_over(
            lazy, "par", ServiceConfig(memory_budget_bytes=4000)
        )
        eager_svc, eager_q = _service_over(eager, "par")
        try:
            bounded = bounded_svc.submit(bounded_q, seed=31)
            unbounded = eager_svc.submit(eager_q, seed=31)
            assert list(bounded.row_ids) == list(unbounded.row_ids)
            assert (
                bounded.ledger.evaluated_count == unbounded.ledger.evaluated_count
            )
            storage = bounded_svc.stats().storage
            assert storage["residency"]["resident_bytes"] <= 4000
        finally:
            bounded_svc.close()
            eager_svc.close()


class TestPressureDegradation:
    def test_high_pressure_sheds_caches(self, lazy_pair):
        lazy, _, _ = lazy_pair()
        service, query = _service_over(lazy, "high")
        try:
            service.submit(query, seed=7)
            assert service.plan_cache.snapshot()["size"] > 0
            service._on_memory_pressure("high")
            assert service.plan_cache.snapshot()["size"] == 0
            assert service.stats().serving["pressure_cache_clears"] == 1
        finally:
            service.close()

    def test_critical_pressure_sheds_async_admissions_typed(self, lazy_pair):
        lazy, _, _ = lazy_pair()
        service, query = _service_over(lazy, "crit")
        try:
            service._on_memory_pressure("critical")
            with pytest.raises(Overloaded) as excinfo:
                asyncio.run(service.submit_async(query, seed=7))
            assert excinfo.value.limit == 0
            stats = service.stats().serving
            assert stats["pressure_shed"] == 1
            assert stats["shed"] >= 1
            # Recovery: back at ok, the same request is admitted again.
            service._on_memory_pressure("ok")
            result = asyncio.run(service.submit_async(query, seed=7))
            assert result.row_ids is not None
        finally:
            service.close()

    def test_watermark_crossing_fires_cache_shed_end_to_end(self, tmp_path):
        # Numeric-only columns: 'amount' and 'count' are 1920 bytes each at
        # 240 rows, so a 4000-byte budget at watermark 0.9 goes high as the
        # second column maps — no manual _on_memory_pressure call involved.
        from repro.db.table import Table

        source = Table.from_columns(
            "wtab", numeric_columns(), hidden_columns=["f"]
        )
        store = TableStore(str(tmp_path / "wtab"))
        store.save(source)
        manager = ResidencyManager(watermark=0.9)
        lazy, _ = store.open(residency=manager)
        service, _ = _service_over(
            lazy, "water", ServiceConfig(memory_budget_bytes=4000)
        )
        try:
            lazy.column_array("amount")
            assert service.stats().serving["pressure_cache_clears"] == 0
            lazy.column_array("count")  # 3840 >= 3600: crosses the watermark
            assert service.stats().serving["pressure_cache_clears"] == 1
        finally:
            service.close()


class TestShutdownHygiene:
    def test_close_evicts_every_mapping(self, lazy_pair):
        lazy, manager, _ = lazy_pair()
        service, query = _service_over(lazy, "close")
        service.submit(query, seed=3)
        service.close()
        assert manager.resident_bytes == 0
        assert manager.mapped_segments == 0
