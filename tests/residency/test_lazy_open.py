"""Lazy TableStore.open: header-only validation, first-touch maps, parity."""

import os

import numpy as np
import pytest

from repro.db.errors import CorruptSegmentError
from repro.db.residency import (
    LazySegmentTable,
    LazyShardedTable,
    ResidencyManager,
)
from repro.db.storage import TableStore, storage_counters


def _flip_payload_byte(store):
    """Flip one payload byte of one segment (header stays valid)."""
    names = sorted(os.listdir(store.segments_dir))
    path = os.path.join(store.segments_dir, names[0])
    data = bytearray(open(path, "rb").read())
    data[-3] ^= 0x08
    open(path, "wb").write(bytes(data))
    return path


def _truncate_header(store):
    """Destroy a segment's magic so even header validation fails."""
    names = sorted(os.listdir(store.segments_dir))
    path = os.path.join(store.segments_dir, names[0])
    open(path, "wb").write(b"not a segment")
    return path


class TestHeaderOnlyOpen:
    def test_open_validates_headers_without_reading_payloads(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table)
        columns = len(table.schema.column_names)
        counters = storage_counters()
        # The satellite fix: open() must not read_segment() every column.
        assert counters["segments_loaded"] == 0
        assert counters["headers_validated"] == columns
        assert manager.mapped_segments == 0
        assert isinstance(lazy, LazySegmentTable)
        assert lazy.is_lazy

    def test_report_counts_deferred_segments(self, table, tmp_path):
        store = TableStore(str(tmp_path / "rep"))
        store.save(table)
        _, report = store.open(residency=ResidencyManager())
        columns = len(table.schema.column_names)
        assert report.segments_deferred == columns
        assert report.segments_loaded == 0
        assert report.to_dict()["segments_deferred"] == columns

    def test_sharded_open_defers_every_shard(self, sharded_table, make_lazy):
        lazy, manager, _ = make_lazy(sharded_table)
        assert isinstance(lazy, LazyShardedTable)
        assert lazy.is_lazy
        assert manager.mapped_segments == 0
        assert storage_counters()["headers_validated"] == 4 * len(
            sharded_table.schema.column_names
        )

    def test_first_touch_maps_exactly_one_segment(self, table, make_lazy):
        lazy, manager, _ = make_lazy(table)
        lazy.column_array("amount")
        assert manager.mapped_segments == 1
        assert storage_counters()["segments_loaded"] == 1


class TestBitwiseParity:
    def test_monolithic_values_match_the_eager_open(self, table, make_lazy, cells):
        lazy, _, store = make_lazy(table)
        eager, _ = store.open()
        assert cells(lazy) == cells(eager)
        assert lazy.shard_signature() == eager.shard_signature()

    def test_sharded_values_match_the_eager_open(self, sharded_table, make_lazy, cells):
        lazy, _, store = make_lazy(sharded_table, budget_bytes=3000)
        eager, _ = store.open()
        assert cells(lazy) == cells(eager)
        assert tuple(lazy.shard_offsets) == tuple(eager.shard_offsets)
        assert lazy.shard_signature() == eager.shard_signature()

    def test_gather_matches_eager_under_tiny_budget(self, sharded_table, make_lazy):
        lazy, manager, store = make_lazy(sharded_table, budget_bytes=1)
        eager, _ = store.open()
        rng = np.random.default_rng(3)
        ids = rng.choice(sharded_table.num_rows, size=64, replace=False)
        for column in sharded_table.schema.column_names:
            got = lazy.gather_column(column, ids, allow_hidden=True)
            want = eager.gather_column(column, ids, allow_hidden=True)
            assert np.array_equal(np.asarray(got), np.asarray(want))
        # A 1-byte budget can hold nothing: everything mapped was evicted.
        assert manager.resident_bytes <= 1
        assert manager.snapshot()["evictions"] > 0

    def test_group_index_matches_eager(self, sharded_table, make_lazy):
        lazy, _, store = make_lazy(sharded_table, budget_bytes=3000)
        eager, _ = store.open()
        lazy_index = lazy.group_index("A")
        eager_index = eager.group_index("A")
        assert list(lazy_index.values) == list(eager_index.values)
        assert np.array_equal(lazy_index.codes, eager_index.codes)


class TestDeferredCorruptionDetection:
    def test_payload_bit_flip_passes_open_fails_first_touch(self, table, tmp_path):
        store = TableStore(str(tmp_path / "corrupt"))
        store.save(table)
        _flip_payload_byte(store)
        lazy, _ = store.open(residency=ResidencyManager())  # headers still fine
        with pytest.raises(CorruptSegmentError):
            for column in lazy.schema.column_names:
                lazy.column_array(column, allow_hidden=True)
        assert storage_counters()["checksum_failures"] >= 1

    def test_destroyed_header_fails_at_open_time(self, table, tmp_path):
        store = TableStore(str(tmp_path / "torn"))
        store.save(table)
        _truncate_header(store)
        with pytest.raises(CorruptSegmentError):
            store.open(residency=ResidencyManager())

    def test_destroyed_header_rebuilds_from_source(self, table, tmp_path, cells):
        store = TableStore(str(tmp_path / "rebuild"))
        store.save(table)
        _truncate_header(store)
        loaded, report = store.open(
            rebuild=lambda: table, residency=ResidencyManager()
        )
        assert report.rebuilt_from_source
        assert cells(loaded) == cells(table)


class TestMaterialisation:
    def test_append_materialises_then_applies(self, table, make_lazy, cells):
        lazy, manager, _ = make_lazy(table)
        lazy.column_array("amount")
        assert manager.mapped_segments == 1
        delta = {
            name: [table.column_values(name, allow_hidden=True)[0]]
            for name in table.schema.column_names
        }
        lazy.append_columns(delta)
        assert not lazy.is_lazy
        assert lazy.num_rows == table.num_rows + 1
        assert manager.resident_bytes == 0  # handles left the residency domain

    def test_journal_replay_materialises_and_matches_eager(
        self, table, tmp_path, cells, make_lazy
    ):
        store = TableStore(str(tmp_path / "journal"))
        store.save(table)
        delta = {
            name: table.column_values(name, allow_hidden=True)[:5]
            for name in table.schema.column_names
        }
        store.append(table, delta)
        lazy, report = store.open(residency=ResidencyManager())
        eager, _ = store.open()
        assert report.journal_records_replayed == 1
        assert not lazy.is_lazy  # replay appends, which materialises
        assert cells(lazy) == cells(eager)

    def test_checkpointed_table_stays_lazy_on_reopen(self, table, tmp_path):
        store = TableStore(str(tmp_path / "ckpt"))
        store.save(table)
        delta = {
            name: table.column_values(name, allow_hidden=True)[:5]
            for name in table.schema.column_names
        }
        store.append(table, delta)
        store.save(table)  # checkpoint absorbs the journal
        lazy, _ = store.open(residency=ResidencyManager())
        assert lazy.is_lazy
