"""Fixtures for the bounded-memory residency suite.

Every test gets counter isolation and the shared leak invariant — zero
exported shm segments, zero dangling segment memmaps, **zero resident
mapped bytes and zero pinned segments** (the bounded-memory gate), and
zero torn ``.tmp`` files — even for the tests that inject map/evict
faults on purpose.
"""

import numpy as np
import pytest

from leakcheck import assert_no_leaked_resources
from repro.db.residency import ResidencyManager, reset_residency_counters
from repro.db.sharding import ShardedTable
from repro.db.storage import TableStore, reset_storage_counters
from repro.db.table import Table


@pytest.fixture(autouse=True)
def _no_leaked_resources(tmp_path):
    reset_storage_counters()
    reset_residency_counters()
    yield
    assert_no_leaked_resources(str(tmp_path))


def build_columns(rows=240, seed=5):
    rng = np.random.default_rng(seed)
    return {
        "A": [f"g{int(v)}" for v in rng.integers(0, 6, rows)],
        "amount": [float(v) for v in np.round(rng.normal(50, 12, rows), 3)],
        "count": [int(v) for v in rng.integers(0, 1000, rows)],
        "f": [bool(v) for v in rng.random(rows) < 0.4],
    }


def numeric_columns(rows=240, seed=5):
    """Fixed-width columns only — every segment is ``numpy``-kind."""
    columns = build_columns(rows=rows, seed=seed)
    del columns["A"]
    return columns


@pytest.fixture
def table():
    return Table.from_columns("rtab", build_columns(), hidden_columns=["f"])


@pytest.fixture
def sharded_table():
    return ShardedTable.from_columns(
        "rstab", build_columns(rows=320, seed=9), num_shards=4, hidden_columns=["f"]
    )


@pytest.fixture
def make_lazy(tmp_path):
    """Persist a table, then reopen it lazily under a residency budget.

    Returns ``(lazy_table, manager, store)``; the eager bitwise baseline is
    a second ``store.open()`` without a manager.
    """

    def _make(source, budget_bytes=None, watermark=0.9, name="lazy"):
        store = TableStore(str(tmp_path / name))
        store.save(source)
        manager = ResidencyManager(budget_bytes=budget_bytes, watermark=watermark)
        loaded, _report = store.open(residency=manager)
        return loaded, manager, store

    return _make


def table_cells(table):
    """Every visible+hidden column's python values (the bitwise pin)."""
    return {
        name: table.column_values(name, allow_hidden=True)
        for name in table.schema.column_names
    }


@pytest.fixture
def cells():
    return table_cells
