"""Injected segment_map / segment_evict faults: recover bitwise or fail typed.

The acceptance contract for bounded-memory serving: every injected map or
evict fault either recovers to the bitwise-identical answer (transient
map faults are retried once; evict faults never interrupt the logical
drop) or surfaces as the typed
:class:`~repro.db.errors.SegmentMapError` — and in *every* outcome zero
mappings are leaked (the conftest leak gate asserts that after each
test).  Selected by the CI ``chaos`` step via ``-k fault`` (the module
name).
"""

import numpy as np
import pytest

from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.errors import SegmentMapError
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.residency import residency_counters
from repro.db.udf import UserDefinedFunction
from repro.resilience import FaultPlan, FaultRule, fault_scope
from repro.serving import QueryService


def _map_fault_plan(addresses=None, probability=None, seed=77):
    return FaultPlan(
        seed=seed,
        rules={
            "segment_map": FaultRule(
                kind="error",
                addresses=frozenset(addresses) if addresses is not None else None,
                probability=probability,
            )
        },
    )


class TestMapFaults:
    def test_transient_map_fault_is_retried_to_bitwise_parity(
        self, table, make_lazy, cells
    ):
        lazy, manager, store = make_lazy(table)
        eager, _ = store.open()
        with fault_scope(_map_fault_plan(addresses={(0,), (3,)})):
            assert cells(lazy) == cells(eager)
        assert manager.snapshot()["map_faults"] == 2
        assert residency_counters()["map_faults"] == 2

    def test_persistent_map_fault_raises_typed_with_zero_mappings(
        self, table, make_lazy
    ):
        lazy, manager, _ = make_lazy(table)
        with fault_scope(_map_fault_plan(probability=1.0)):
            with pytest.raises(SegmentMapError) as excinfo:
                lazy.column_array("amount")
        assert excinfo.value.path.endswith(".seg")
        assert manager.resident_bytes == 0
        assert manager.mapped_segments == 0
        assert manager.snapshot()["map_faults"] == 2  # one retry per touch

    def test_map_faults_under_pressure_still_answer_bitwise(
        self, sharded_table, make_lazy
    ):
        lazy, manager, store = make_lazy(sharded_table, budget_bytes=2000)
        eager, _ = store.open()
        rng = np.random.default_rng(5)
        ids = rng.choice(sharded_table.num_rows, size=80, replace=False)
        with fault_scope(_map_fault_plan(probability=0.3, seed=123)):
            for column in sharded_table.schema.column_names:
                try:
                    got = lazy.gather_column(column, ids, allow_hidden=True)
                except SegmentMapError:
                    continue  # typed, never silent — retry off-fault below
                want = eager.gather_column(column, ids, allow_hidden=True)
                assert np.array_equal(np.asarray(got), np.asarray(want))
        assert manager.resident_bytes <= 2000


class TestMapBreakerDegrade:
    def test_repeated_map_failures_degrade_to_materialised(
        self, table, make_lazy, cells
    ):
        lazy, manager, store = make_lazy(table)
        eager, _ = store.open()
        breaker = lazy._map_breaker
        assert breaker is not None
        with fault_scope(_map_fault_plan(probability=1.0)):
            # failure_threshold=3: the third consecutive SegmentMapError
            # opens the breaker *as it is recorded*, so that same touch
            # degrades to materialised instead of raising.
            for _attempt in range(2):
                with pytest.raises(SegmentMapError):
                    lazy.column_array("amount")
            before = residency_counters()
            assert lazy.column_array("amount") is not None
        # Degraded: rebuilt in memory (reads bypass the map site), lazy no
        # more, nothing resident — and still bitwise-identical.
        assert not lazy.is_lazy
        assert manager.resident_bytes == 0
        counters = residency_counters()
        assert counters["tables_materialised"] == before["tables_materialised"] + 1
        assert counters["tables_degraded"] == before["tables_degraded"] + 1
        assert cells(lazy) == cells(eager)

    def test_sharded_degrade_keeps_query_answers_bitwise(
        self, sharded_table, make_lazy
    ):
        lazy, manager, store = make_lazy(sharded_table, budget_bytes=3000)
        eager, _ = store.open()

        def answer(source):
            catalog = Catalog()
            catalog.register_table(source)
            udf = UserDefinedFunction.from_label_column(f"udf_{source.name}", "f")
            catalog.register_udf(udf)
            service = QueryService(Engine(catalog))
            query = SelectQuery(
                table=source.name,
                predicate=UdfPredicate(udf),
                alpha=0.8,
                beta=0.8,
                rho=0.8,
                correlated_column="A",
            )
            result = service.submit(query, seed=31)
            service.close()
            return list(result.row_ids), result.ledger.evaluated_count

        baseline = answer(eager)
        first = lazy.shards[0]
        with fault_scope(_map_fault_plan(probability=1.0)):
            for _attempt in range(2):
                with pytest.raises(SegmentMapError):
                    first.column_array("amount")
            # The third failure trips the breaker (shared by every shard of
            # this table) and the touch degrades to materialised in place.
            assert first.column_array("amount") is not None
        assert not first.is_lazy
        # Off-fault, the remaining shards serve lazily; the answer matches
        # bitwise, and the service's close() leaves nothing resident.
        assert answer(lazy) == baseline
        assert manager.resident_bytes == 0


class TestEvictFaults:
    def test_evict_fault_never_leaks_the_mapping(self, table, make_lazy, cells):
        lazy, manager, store = make_lazy(table, budget_bytes=2000)
        eager, _ = store.open()
        plan = FaultPlan(
            seed=9,
            rules={"segment_evict": FaultRule(kind="error", probability=1.0)},
        )
        with fault_scope(plan):
            assert cells(lazy) == cells(eager)  # forces eviction every map
        snapshot = manager.snapshot()
        assert snapshot["evictions"] > 0
        assert snapshot["evict_faults"] == snapshot["evictions"]
        assert residency_counters()["evict_faults"] > 0
        # The logical drop always completed: residency fits the budget.
        assert manager.resident_bytes <= 2000

    def test_evict_fault_during_evict_all_still_drops_everything(
        self, table, make_lazy
    ):
        lazy, manager, _ = make_lazy(table)
        for column in lazy.schema.column_names:
            lazy.column_array(column, allow_hidden=True)
        plan = FaultPlan(
            seed=9,
            rules={"segment_evict": FaultRule(kind="error", probability=1.0)},
        )
        with fault_scope(plan):
            dropped = manager.evict_all()
        assert dropped == len(lazy.schema.column_names)
        assert manager.resident_bytes == 0
        assert manager.mapped_segments == 0


class TestMapFaultCounterDiscipline:
    def test_fault_addresses_are_deterministic_across_runs(self, table, tmp_path):
        from repro.db.residency import ResidencyManager
        from repro.db.storage import TableStore

        outcomes = []
        for run in range(2):
            store = TableStore(str(tmp_path / f"det{run}"))
            store.save(table)
            manager = ResidencyManager()
            lazy, _ = store.open(residency=manager)
            failed = []
            with fault_scope(_map_fault_plan(probability=0.5, seed=55)):
                for column in sorted(lazy.schema.column_names):
                    try:
                        lazy.column_array(column, allow_hidden=True)
                        failed.append((column, "ok"))
                    except SegmentMapError:
                        failed.append((column, "typed"))
            outcomes.append(failed)
            manager.evict_all()
        assert outcomes[0] == outcomes[1]
