"""Tests for UDFs and cost ledgers."""

import pytest

from repro.db.errors import BudgetExhaustedError, DuplicateObjectError, UdfNotFoundError
from repro.db.udf import CostLedger, UdfRegistry, UserDefinedFunction


class TestCostLedger:
    def test_total_cost_formula(self):
        ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
        ledger.charge_retrieval(10)
        ledger.charge_evaluation(4)
        assert ledger.total_cost == pytest.approx(10 * 1.0 + 4 * 3.0)

    def test_default_costs_match_paper(self):
        ledger = CostLedger()
        assert ledger.retrieval_cost == 1.0
        assert ledger.evaluation_cost == 3.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostLedger(retrieval_cost=-1.0)

    def test_budget_enforced(self):
        ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
        ledger.set_budget(5.0)
        ledger.charge_evaluation()  # cost 3
        with pytest.raises(BudgetExhaustedError):
            ledger.charge_evaluation()  # would exceed 5

    def test_budget_allows_exact_fit(self):
        ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
        ledger.set_budget(4.0)
        ledger.charge_evaluation()
        ledger.charge_retrieval()
        assert ledger.total_cost == pytest.approx(4.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().set_budget(-1.0)

    def test_reset_clears_counts_not_costs(self):
        ledger = CostLedger(retrieval_cost=2.0)
        ledger.charge_retrieval(3)
        ledger.reset()
        assert ledger.retrieved_count == 0
        assert ledger.retrieval_cost == 2.0

    def test_snapshot(self):
        ledger = CostLedger()
        ledger.charge_retrieval()
        snap = ledger.snapshot()
        assert snap["retrieved"] == 1
        assert snap["total_cost"] == pytest.approx(1.0)


class TestUserDefinedFunction:
    def test_label_column_udf(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        assert udf.evaluate_row(toy_table, 0) is True
        assert udf.evaluate_row(toy_table, 4) is False

    def test_call_count_increments(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        udf.evaluate_row(toy_table, 0)
        udf.evaluate_row(toy_table, 1)
        assert udf.call_count == 2

    def test_memoization_avoids_recount(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f", evaluation_cost=3.0)
        udf.evaluate_row(toy_table, 0)
        udf.evaluate_row(toy_table, 0)
        assert udf.call_count == 1

    def test_no_memoization_when_disabled(self, toy_table):
        udf = UserDefinedFunction("g", lambda row: row["A"] == 1, memoize=False)
        udf.evaluate_row(toy_table, 0)
        udf.evaluate_row(toy_table, 0)
        assert udf.call_count == 2

    def test_reset(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        udf.evaluate_row(toy_table, 0)
        udf.reset()
        assert udf.call_count == 0

    def test_direct_call_on_row_dict(self):
        udf = UserDefinedFunction("g", lambda row: row["x"] > 5)
        assert udf({"x": 10}) is True
        assert udf({"x": 1}) is False

    def test_missing_label_column_raises(self):
        udf = UserDefinedFunction.from_label_column("f_check", "missing")
        with pytest.raises(KeyError):
            udf({"other": 1})

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            UserDefinedFunction("g", lambda row: True, evaluation_cost=-1)


class TestRegistry:
    def test_register_and_get(self):
        registry = UdfRegistry()
        udf = UserDefinedFunction("f", lambda row: True)
        registry.register(udf)
        assert registry.get("f") is udf
        assert "f" in registry
        assert len(registry) == 1

    def test_duplicate_registration_rejected(self):
        registry = UdfRegistry()
        registry.register(UserDefinedFunction("f", lambda row: True))
        with pytest.raises(DuplicateObjectError):
            registry.register(UserDefinedFunction("f", lambda row: False))

    def test_replace_allowed_when_requested(self):
        registry = UdfRegistry()
        registry.register(UserDefinedFunction("f", lambda row: True))
        replacement = UserDefinedFunction("f", lambda row: False)
        registry.register(replacement, replace=True)
        assert registry.get("f") is replacement

    def test_missing_udf_raises(self):
        with pytest.raises(UdfNotFoundError):
            UdfRegistry().get("nope")

    def test_names(self):
        registry = UdfRegistry()
        registry.register(UserDefinedFunction("a", lambda row: True))
        registry.register(UserDefinedFunction("b", lambda row: True))
        assert registry.names() == ["a", "b"]
