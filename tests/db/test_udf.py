"""Tests for UDFs and cost ledgers."""

import pytest

from repro.db.errors import BudgetExhaustedError, DuplicateObjectError, UdfNotFoundError
from repro.db.udf import CostLedger, UdfRegistry, UserDefinedFunction


class TestCostLedger:
    def test_total_cost_formula(self):
        ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
        ledger.charge_retrieval(10)
        ledger.charge_evaluation(4)
        assert ledger.total_cost == pytest.approx(10 * 1.0 + 4 * 3.0)

    def test_default_costs_match_paper(self):
        ledger = CostLedger()
        assert ledger.retrieval_cost == 1.0
        assert ledger.evaluation_cost == 3.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostLedger(retrieval_cost=-1.0)

    def test_budget_enforced(self):
        ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
        ledger.set_budget(5.0)
        ledger.charge_evaluation()  # cost 3
        with pytest.raises(BudgetExhaustedError):
            ledger.charge_evaluation()  # would exceed 5

    def test_budget_allows_exact_fit(self):
        ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
        ledger.set_budget(4.0)
        ledger.charge_evaluation()
        ledger.charge_retrieval()
        assert ledger.total_cost == pytest.approx(4.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().set_budget(-1.0)

    def test_reset_clears_counts_not_costs(self):
        ledger = CostLedger(retrieval_cost=2.0)
        ledger.charge_retrieval(3)
        ledger.reset()
        assert ledger.retrieved_count == 0
        assert ledger.retrieval_cost == 2.0

    def test_snapshot(self):
        ledger = CostLedger()
        ledger.charge_retrieval()
        snap = ledger.snapshot()
        assert snap["retrieved"] == 1
        assert snap["total_cost"] == pytest.approx(1.0)


class TestUserDefinedFunction:
    def test_label_column_udf(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        assert udf.evaluate_row(toy_table, 0) is True
        assert udf.evaluate_row(toy_table, 4) is False

    def test_call_count_increments(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        udf.evaluate_row(toy_table, 0)
        udf.evaluate_row(toy_table, 1)
        assert udf.call_count == 2

    def test_memoization_avoids_recount(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f", evaluation_cost=3.0)
        udf.evaluate_row(toy_table, 0)
        udf.evaluate_row(toy_table, 0)
        assert udf.call_count == 1

    def test_no_memoization_when_disabled(self, toy_table):
        udf = UserDefinedFunction("g", lambda row: row["A"] == 1, memoize=False)
        udf.evaluate_row(toy_table, 0)
        udf.evaluate_row(toy_table, 0)
        assert udf.call_count == 2

    def test_reset(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        udf.evaluate_row(toy_table, 0)
        udf.reset()
        assert udf.call_count == 0

    def test_hit_miss_counters(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        udf.evaluate_row(toy_table, 0)
        udf.evaluate_row(toy_table, 0)
        udf.evaluate_row(toy_table, 1)
        assert udf.cache_misses == 2
        assert udf.cache_hits == 1
        snap = udf.counter_snapshot()
        assert snap["cache_hits"] == 1 and snap["cache_misses"] == 2
        udf.reset()
        assert udf.cache_hits == udf.cache_misses == 0

    def test_evaluate_rows_matches_per_row(self, toy_table):
        bulk = UserDefinedFunction.from_label_column("f_bulk", "f")
        single = UserDefinedFunction.from_label_column("f_single", "f")
        rows = list(toy_table.row_ids)
        outcomes = bulk.evaluate_rows(toy_table, rows)
        assert [bool(o) for o in outcomes] == [single.evaluate_row(toy_table, r) for r in rows]
        assert bulk.call_count == single.call_count == len(rows)

    def test_evaluate_rows_serves_memoized_rows_from_cache(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        udf.evaluate_rows(toy_table, [0, 1, 2])
        udf.evaluate_rows(toy_table, [1, 2, 3])
        assert udf.cache_hits == 2
        assert udf.cache_misses == 4
        assert udf.call_count == 4

    def test_oracle_mode_leaves_no_trace(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        with udf.oracle_mode():
            assert udf.evaluate_row(toy_table, 0) is True
        assert udf.call_count == 0
        assert udf.cache_misses == 0
        assert udf.counter_snapshot()["cache_size"] == 0
        # Paid evaluation afterwards is charged normally.
        udf.evaluate_row(toy_table, 0)
        assert udf.call_count == 1

    def test_oracle_mode_covers_bulk_evaluation(self, toy_table):
        udf = UserDefinedFunction.from_label_column("f_check", "f")
        with udf.oracle_mode():
            outcomes = udf.evaluate_rows(toy_table, list(toy_table.row_ids))
        assert bool(outcomes[0]) is True
        assert udf.call_count == 0
        assert udf.counter_snapshot()["cache_size"] == 0

    def test_evaluate_rows_generic_callable(self, toy_table):
        udf = UserDefinedFunction("g", lambda row: row["A"] == 1)
        outcomes = udf.evaluate_rows(toy_table, list(toy_table.row_ids))
        assert [bool(o) for o in outcomes] == [
            value == 1 for value in toy_table.column_values("A")
        ]

    def test_direct_call_on_row_dict(self):
        udf = UserDefinedFunction("g", lambda row: row["x"] > 5)
        assert udf({"x": 10}) is True
        assert udf({"x": 1}) is False

    def test_missing_label_column_raises(self):
        udf = UserDefinedFunction.from_label_column("f_check", "missing")
        with pytest.raises(KeyError):
            udf({"other": 1})

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            UserDefinedFunction("g", lambda row: True, evaluation_cost=-1)


class TestRegistry:
    def test_register_and_get(self):
        registry = UdfRegistry()
        udf = UserDefinedFunction("f", lambda row: True)
        registry.register(udf)
        assert registry.get("f") is udf
        assert "f" in registry
        assert len(registry) == 1

    def test_duplicate_registration_rejected(self):
        registry = UdfRegistry()
        registry.register(UserDefinedFunction("f", lambda row: True))
        with pytest.raises(DuplicateObjectError):
            registry.register(UserDefinedFunction("f", lambda row: False))

    def test_replace_allowed_when_requested(self):
        registry = UdfRegistry()
        registry.register(UserDefinedFunction("f", lambda row: True))
        replacement = UserDefinedFunction("f", lambda row: False)
        registry.register(replacement, replace=True)
        assert registry.get("f") is replacement

    def test_missing_udf_raises(self):
        with pytest.raises(UdfNotFoundError):
            UdfRegistry().get("nope")

    def test_names(self):
        registry = UdfRegistry()
        registry.register(UserDefinedFunction("a", lambda row: True))
        registry.register(UserDefinedFunction("b", lambda row: True))
        assert registry.names() == ["a", "b"]
