"""Tests for the catalog, query description and engine."""

import pytest

from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.errors import DuplicateObjectError, TableNotFoundError
from repro.db.predicate import ColumnPredicate, UdfPredicate
from repro.db.query import SelectQuery
from repro.db.udf import UserDefinedFunction


@pytest.fixture
def toy_catalog(toy_table, toy_udf):
    catalog = Catalog()
    catalog.register_table(toy_table)
    catalog.register_udf(toy_udf)
    return catalog


@pytest.fixture
def toy_query(toy_udf):
    return SelectQuery(
        table="toy_credit",
        predicate=UdfPredicate(toy_udf),
        alpha=1.0,
        beta=1.0,
        rho=0.95,
    )


class TestCatalog:
    def test_register_and_lookup(self, toy_catalog, toy_table):
        assert toy_catalog.table("toy_credit") is toy_table
        assert toy_catalog.has_table("toy_credit")
        assert toy_catalog.table_names() == ["toy_credit"]

    def test_duplicate_table_rejected(self, toy_catalog, toy_table):
        with pytest.raises(DuplicateObjectError):
            toy_catalog.register_table(toy_table)

    def test_replace_table(self, toy_catalog, toy_table):
        toy_catalog.register_table(toy_table, replace=True)
        assert len(toy_catalog) == 1

    def test_missing_table(self, toy_catalog):
        with pytest.raises(TableNotFoundError):
            toy_catalog.table("missing")

    def test_drop_table(self, toy_catalog):
        toy_catalog.drop_table("toy_credit")
        assert not toy_catalog.has_table("toy_credit")

    def test_udf_lookup(self, toy_catalog, toy_udf):
        assert toy_catalog.udf(toy_udf.name) is toy_udf


class TestSelectQuery:
    def test_exactness(self, toy_udf):
        query = SelectQuery("t", UdfPredicate(toy_udf), alpha=1.0, beta=1.0, rho=1.0)
        assert query.is_exact

    def test_approximate_query(self, toy_udf):
        query = SelectQuery("t", UdfPredicate(toy_udf), alpha=0.8, beta=0.8, rho=0.8)
        assert not query.is_exact

    def test_invalid_alpha_rejected(self, toy_udf):
        with pytest.raises(ValueError):
            SelectQuery("t", UdfPredicate(toy_udf), alpha=1.2)

    def test_invalid_rho_rejected(self, toy_udf):
        with pytest.raises(ValueError):
            SelectQuery("t", UdfPredicate(toy_udf), alpha=0.8, beta=0.8, rho=1.0)

    def test_udf_predicate_discovery(self, toy_udf):
        cheap = ColumnPredicate("A", "==", 1)
        query = SelectQuery("t", cheap & UdfPredicate(toy_udf))
        assert len(query.udf_predicates) == 1

    def test_describe_mentions_constraints(self, toy_udf):
        query = SelectQuery("t", UdfPredicate(toy_udf), alpha=0.9, beta=0.7, rho=0.8)
        description = query.describe()
        assert "0.9" in description and "0.7" in description


class TestEngineExact:
    def test_exact_execution_returns_ground_truth(self, toy_catalog, toy_query, toy_truth):
        engine = Engine(toy_catalog)
        result = engine.execute(toy_query)
        assert result.row_id_set == toy_truth

    def test_row_id_set_is_cached_and_read_only(self, toy_catalog, toy_query):
        engine = Engine(toy_catalog)
        result = engine.execute(toy_query)
        first = result.row_id_set
        assert first is result.row_id_set  # built once, not per access
        assert isinstance(first, frozenset)

    def test_exact_execution_charges_full_cost(self, toy_catalog, toy_query, toy_table):
        engine = Engine(toy_catalog, retrieval_cost=1.0, evaluation_cost=3.0)
        result = engine.execute(toy_query)
        n = toy_table.num_rows
        assert result.ledger.retrieved_count == n
        assert result.ledger.evaluated_count == n
        assert result.total_cost == pytest.approx(n * 4.0)

    def test_cheap_predicates_filter_before_udf(self, toy_catalog, toy_udf):
        query = SelectQuery(
            table="toy_credit",
            predicate=UdfPredicate(toy_udf),
            cheap_predicates=[ColumnPredicate("A", "==", 1)],
            alpha=1.0,
            beta=1.0,
            rho=0.95,
        )
        engine = Engine(toy_catalog)
        result = engine.execute(query)
        assert result.row_id_set == {0, 1, 2, 3}
        assert result.ledger.evaluated_count == 4

    def test_ground_truth_charges_nothing(self, toy_catalog, toy_query, toy_udf):
        engine = Engine(toy_catalog)
        truth = engine.ground_truth(toy_query)
        assert truth == {0, 1, 2, 3, 5, 11}

    def test_audit_reports_quality(self, toy_catalog, toy_query):
        engine = Engine(toy_catalog)
        result = engine.execute(toy_query, audit=True)
        assert result.quality is not None
        assert result.quality.precision == 1.0
        assert result.quality.recall == 1.0


class TestEngineWithStrategy:
    def test_custom_strategy_invoked(self, toy_catalog, toy_udf):
        class EverythingStrategy:
            def run(self, table, query, ledger):
                from repro.db.engine import QueryResult

                ledger.charge_retrieval(table.num_rows)
                return QueryResult(row_ids=list(table.row_ids), ledger=ledger)

        query = SelectQuery(
            "toy_credit", UdfPredicate(toy_udf), alpha=0.4, beta=0.8, rho=0.8
        )
        engine = Engine(toy_catalog)
        result = engine.execute(query, strategy=EverythingStrategy(), audit=True)
        assert len(result) == 12
        # Returning everything gives recall 1 and precision = 6/12.
        assert result.quality.recall == 1.0
        assert result.quality.precision == pytest.approx(0.5)

    def test_infeasible_strategy_falls_back_to_exact(self, toy_catalog, toy_udf):
        """A strategy that lets a genuinely infeasible margined program
        escape gets absorbed by the engine: exhaustive evaluation is always
        a correct answer, and the metadata records why."""
        from repro.solvers.linear import InfeasibleProblemError

        class InfeasibleStrategy:
            def run(self, table, query, ledger):
                raise InfeasibleProblemError("margined LP has no solution")

        query = SelectQuery(
            "toy_credit", UdfPredicate(toy_udf), alpha=0.8, beta=0.8, rho=0.8
        )
        engine = Engine(toy_catalog)
        result = engine.execute(query, strategy=InfeasibleStrategy(), audit=True)
        assert result.metadata["strategy"] == "exact"
        assert "infeasible" in result.metadata["fallback_reason"]
        assert result.quality.precision == 1.0
        assert result.quality.recall == 1.0


class TestVectorisedExactScan:
    """The bulk exact scan matches the per-row reference loop exactly."""

    def _setup(self, rows=300, seed=13):
        import numpy as np

        from repro.db.table import Table

        rng = np.random.default_rng(seed)
        table = Table.from_columns(
            "scan",
            {
                "grade": [f"g{int(v)}" for v in rng.integers(0, 4, rows)],
                "amount": [float(v) for v in rng.normal(100, 30, rows)],
                "is_good": [bool(v) for v in rng.random(rows) < 0.4],
            },
            hidden_columns=["is_good"],
        )
        udf = UserDefinedFunction.from_label_column("scan_udf", "is_good")
        catalog = Catalog()
        catalog.register_table(table)
        catalog.register_udf(udf)
        return table, udf, catalog

    def _reference(self, table, query, ledger):
        """The historical per-row loop (cheap predicates, then the scan)."""
        row_ids = list(table.row_ids)
        for cheap in query.cheap_predicates:
            row_ids = [r for r in row_ids if cheap.evaluate(table, r)]
        matched = []
        for row_id in row_ids:
            ledger.charge_retrieval()
            if query.predicate.evaluate(table, row_id, ledger):
                matched.append(row_id)
        return matched

    def _compare(self, catalog, udf, query):
        from repro.db.udf import CostLedger

        engine = Engine(catalog)
        table = catalog.table(query.table)
        reference_ledger = CostLedger()
        udf.reset()
        expected = self._reference(table, query, reference_ledger)
        udf.reset()
        result = engine.execute_exact(query)
        assert list(result.row_ids) == expected
        assert result.ledger.retrieved_count == reference_ledger.retrieved_count
        assert result.ledger.evaluated_count == reference_ledger.evaluated_count

    def test_udf_only_scan(self):
        table, udf, catalog = self._setup()
        self._compare(
            catalog, udf,
            SelectQuery("scan", UdfPredicate(udf), alpha=1.0, beta=1.0, rho=0.9),
        )

    def test_cheap_predicates_filter_before_the_scan(self):
        table, udf, catalog = self._setup()
        self._compare(
            catalog, udf,
            SelectQuery(
                "scan",
                UdfPredicate(udf),
                cheap_predicates=[
                    ColumnPredicate("grade", "in", {"g1", "g2"}),
                    ColumnPredicate("amount", ">", 90.0),
                ],
                alpha=1.0, beta=1.0, rho=0.9,
            ),
        )

    def test_conjunction_short_circuits_identically(self):
        from repro.db.predicate import AndPredicate, NotPredicate, OrPredicate

        table, udf, catalog = self._setup()
        predicate = AndPredicate(
            [ColumnPredicate("grade", "==", "g2"), UdfPredicate(udf)]
        )
        self._compare(
            catalog, udf,
            SelectQuery("scan", predicate, alpha=1.0, beta=1.0, rho=0.9),
        )
        disjunction = OrPredicate(
            [ColumnPredicate("grade", "==", "g0"), NotPredicate(UdfPredicate(udf))]
        )
        self._compare(
            catalog, udf,
            SelectQuery("scan", disjunction, alpha=1.0, beta=1.0, rho=0.9),
        )

    def test_custom_predicate_falls_back_to_per_row(self):
        from repro.db.predicate import Predicate

        class OddRows(Predicate):
            def evaluate(self, table, row_id, ledger=None):
                return row_id % 2 == 1

        table, udf, catalog = self._setup(rows=40)
        self._compare(
            catalog, udf,
            SelectQuery(
                "scan",
                UdfPredicate(udf),
                cheap_predicates=[OddRows()],
                alpha=1.0, beta=1.0, rho=0.9,
            ),
        )

    def test_incomparable_operand_matches_per_row_semantics(self):
        table, udf, catalog = self._setup(rows=20)
        # per-row: "g1" == 7 is False for every row; the bulk path must agree
        self._compare(
            catalog, udf,
            SelectQuery(
                "scan",
                UdfPredicate(udf),
                cheap_predicates=[ColumnPredicate("grade", "==", 7)],
                alpha=1.0, beta=1.0, rho=0.9,
            ),
        )
