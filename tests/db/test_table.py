"""Tests for the in-memory table and schema machinery."""

import pytest

from repro.db.column import Column, ColumnType
from repro.db.errors import ColumnNotFoundError, SchemaMismatchError
from repro.db.schema import Schema
from repro.db.table import Table


@pytest.fixture
def people_table():
    return Table.from_columns(
        name="people",
        columns={
            "name": ["ann", "bob", "cara", "dan"],
            "age": [34, 28, 41, 55],
            "city": ["sf", "sf", "nyc", "la"],
            "rich": [True, False, True, False],
        },
        column_types={
            "name": ColumnType.TEXT,
            "age": ColumnType.NUMERIC,
            "city": ColumnType.CATEGORICAL,
            "rich": ColumnType.BOOLEAN,
        },
        hidden_columns=("rich",),
    )


class TestConstruction:
    def test_from_rows_infers_schema(self):
        table = Table.from_rows("t", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert table.num_rows == 2
        assert table.schema.column("a").column_type == ColumnType.NUMERIC
        assert table.schema.column("b").column_type == ColumnType.CATEGORICAL

    def test_from_columns_basic_shape(self, people_table):
        assert people_table.num_rows == 4
        assert people_table.num_columns == 4
        assert len(people_table) == 4

    def test_inconsistent_column_lengths_rejected(self):
        with pytest.raises(SchemaMismatchError):
            Table.from_columns("t", {"a": [1, 2], "b": [1]})

    def test_missing_column_data_rejected(self):
        schema = Schema.from_types(a="numeric", b="numeric")
        with pytest.raises(SchemaMismatchError):
            Table("t", schema, {"a": [1, 2]})

    def test_unknown_column_data_rejected(self):
        schema = Schema.from_types(a="numeric")
        with pytest.raises(SchemaMismatchError):
            Table("t", schema, {"a": [1], "zz": [2]})

    def test_from_rows_rejects_bad_row_batch(self):
        schema = Schema.from_types(a="numeric")
        with pytest.raises(SchemaMismatchError):
            Table.from_rows("t", [{"a": 1}, {"a": 2, "zz": 3}], schema=schema)
        with pytest.raises(SchemaMismatchError):
            Table.from_rows("t", [{"a": 1}, {}], schema=schema)
        with pytest.raises(ValueError):
            Table.from_rows("t", [{"a": 1}, {"a": "not numeric"}], schema=schema)

    def test_validate_rows_matches_per_row_validation(self):
        schema = Schema.from_types(a="numeric", b="categorical", c="boolean")
        rows = [{"a": 1.5, "b": "x", "c": True}, {"a": 2, "b": "y", "c": False}]
        schema.validate_rows(rows)  # must not raise
        for row in rows:
            schema.validate_row(row)

    def test_from_columns_infers_types_from_iterator_prefix(self):
        # Type inference only peeks at a bounded prefix; a long column with a
        # late type change still infers from the first values (documented
        # 100-value window, matching Schema.infer).
        values = list(range(200)) + ["tail-string"] * 5
        table = Table.from_columns("t", {"a": values})
        assert table.schema.column("a").column_type == ColumnType.NUMERIC
        assert table.num_rows == len(values)


class TestColumnArray:
    def test_matches_column_values(self, people_table):
        array = people_table.column_array("city")
        assert list(array) == people_table.column_values("city")

    def test_cached_and_read_only(self, people_table):
        first = people_table.column_array("city")
        second = people_table.column_array("city")
        assert first is second
        with pytest.raises(ValueError):
            first[0] = "boston"

    def test_ragged_cells_fall_back_to_object_array(self):
        table = Table.from_columns(
            name="ragged",
            columns={"tags": [[1, 2], [1], [3, 4, 5]]},
            column_types={"tags": ColumnType.TEXT},
        )
        array = table.column_array("tags")
        assert array.dtype == object
        assert list(array) == [[1, 2], [1], [3, 4, 5]]

    def test_hidden_column_blocked_by_default(self, people_table):
        with pytest.raises(ColumnNotFoundError):
            people_table.column_array("rich")
        assert list(people_table.column_array("rich", allow_hidden=True)) == [
            True,
            False,
            True,
            False,
        ]


class TestAccess:
    def test_column_values(self, people_table):
        assert people_table.column_values("city") == ["sf", "sf", "nyc", "la"]

    def test_hidden_column_blocked_by_default(self, people_table):
        with pytest.raises(ColumnNotFoundError):
            people_table.column_values("rich")

    def test_hidden_column_visible_when_allowed(self, people_table):
        assert people_table.column_values("rich", allow_hidden=True) == [
            True, False, True, False,
        ]

    def test_row_excludes_hidden_by_default(self, people_table):
        row = people_table.row(0)
        assert "rich" not in row
        assert row["name"] == "ann"

    def test_row_includes_hidden_when_asked(self, people_table):
        assert people_table.row(0, include_hidden=True)["rich"] is True

    def test_value_access(self, people_table):
        assert people_table.value(2, "age") == 41

    def test_row_id_out_of_range(self, people_table):
        with pytest.raises(IndexError):
            people_table.row(99)

    def test_distinct_preserves_order(self, people_table):
        assert people_table.distinct("city") == ["sf", "nyc", "la"]

    def test_num_distinct(self, people_table):
        assert people_table.num_distinct("city") == 3

    def test_rows_iterator(self, people_table):
        rows = list(people_table.rows())
        assert len(rows) == 4
        assert all("rich" not in row for row in rows)


class TestDerivation:
    def test_select_rows(self, people_table):
        subset = people_table.select_rows([1, 3])
        assert subset.num_rows == 2
        assert subset.column_values("name") == ["bob", "dan"]

    def test_select_rows_out_of_range(self, people_table):
        with pytest.raises(IndexError):
            people_table.select_rows([7])

    def test_with_column_adds_new_column(self, people_table):
        augmented = people_table.with_column(
            Column(name="bucket", column_type=ColumnType.CATEGORICAL),
            ["b1", "b2", "b1", "b2"],
        )
        assert augmented.num_columns == 5
        assert augmented.column_values("bucket") == ["b1", "b2", "b1", "b2"]
        # The original table is untouched.
        assert people_table.num_columns == 4

    def test_with_column_replaces_existing(self, people_table):
        replaced = people_table.with_column(
            Column(name="city", column_type=ColumnType.CATEGORICAL),
            ["x", "x", "x", "x"],
        )
        assert replaced.num_columns == 4
        assert replaced.distinct("city") == ["x"]

    def test_with_column_length_mismatch(self, people_table):
        with pytest.raises(SchemaMismatchError):
            people_table.with_column(
                Column(name="bad", column_type=ColumnType.NUMERIC), [1, 2]
            )

    def test_filter(self, people_table):
        matches = people_table.filter(lambda row: row["age"] > 30)
        assert matches == [0, 2, 3]

    def test_group_row_ids(self, people_table):
        groups = people_table.group_row_ids("city")
        assert groups == {"sf": [0, 1], "nyc": [2], "la": [3]}


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaMismatchError):
            Schema([Column("a"), Column("a")])

    def test_visible_column_names(self, people_table):
        assert "rich" not in people_table.schema.visible_column_names

    def test_categorical_columns(self, people_table):
        names = [c.name for c in people_table.schema.categorical_columns()]
        assert "city" in names
        assert "age" not in names

    def test_numeric_columns(self, people_table):
        names = [c.name for c in people_table.schema.numeric_columns()]
        assert names == ["age"]

    def test_column_lookup_error_lists_available(self, people_table):
        with pytest.raises(ColumnNotFoundError):
            people_table.schema.column("nope")

    def test_contains(self, people_table):
        assert "city" in people_table.schema
        assert "nope" not in people_table.schema

    def test_equality(self):
        a = Schema.from_types(x="numeric")
        b = Schema.from_types(x="numeric")
        assert a == b

    def test_validate_row_missing_column(self):
        schema = Schema.from_types(a="numeric", b="text")
        with pytest.raises(SchemaMismatchError):
            schema.validate_row({"a": 1})

    def test_validate_row_type_error(self):
        schema = Schema.from_types(a="numeric")
        with pytest.raises(ValueError):
            schema.validate_row({"a": "not a number"})
