"""Pickle safety of the UDF worker contract.

Process-pool execution ships a :class:`~repro.db.udf.UdfSpec` to spawn
workers, so every UDF the library hands out must survive
``worker_spec() -> pickle -> spec_evaluate`` with outcomes identical to
in-process evaluation.  CI runs this file as the pickle-safety gate (the
``-k pickle_safety`` step), so a dataset whose UDF silently stops being
shippable fails loudly here, not as a quiet serial fallback in production.
"""

import pickle

import numpy as np
import pytest

from repro.core.procpool import spec_evaluate
from repro.datasets.registry import dataset_names, load_dataset
from repro.db.errors import UnpicklableUdfError
from repro.db.shm import export_table_spans, release_exports
from repro.db.table import Table
from repro.db.udf import RevealLabel, UdfSpec, UserDefinedFunction


def _spec_roundtrip(udf):
    spec = udf.worker_spec()
    restored = pickle.loads(pickle.dumps(spec))
    assert isinstance(restored, UdfSpec)
    assert restored.name == spec.name
    return restored


class TestDatasetUdfsRoundTrip:
    @pytest.mark.parametrize("name", dataset_names())
    def test_pickle_safety(self, name):
        """Every registered dataset UDF ships to workers and agrees bitwise."""
        bundle = load_dataset(name, random_state=7, scale=0.05)
        udf = bundle.make_udf()
        spec = _spec_roundtrip(udf)

        table = bundle.table
        if spec.func is None:
            columns = [spec.label_column]
        else:
            columns = table.schema.column_names
        exports = export_table_spans(table, columns)
        try:
            rng = np.random.default_rng(3)
            ids = np.sort(
                rng.choice(table.num_rows, size=min(200, table.num_rows), replace=False)
            ).astype(np.intp)
            remote = spec_evaluate(spec, exports, ids)
            local = udf.evaluate_rows(table, ids)
            assert np.array_equal(np.asarray(remote), np.asarray(local))
        finally:
            release_exports(table)


class TestWorkerSpec:
    def test_label_udf_spec_has_no_func(self):
        udf = UserDefinedFunction.from_label_column("lbl", "f")
        spec = _spec_roundtrip(udf)
        assert spec.func is None
        assert spec.label_column == "f"

    def test_module_level_callable_ships(self):
        udf = UserDefinedFunction("reveal", RevealLabel("f", True))
        spec = _spec_roundtrip(udf)
        assert spec.label_column is None
        assert isinstance(spec.func, RevealLabel)

    def test_lambda_raises_typed_error(self):
        udf = UserDefinedFunction("lam", lambda row: True)
        with pytest.raises(UnpicklableUdfError) as excinfo:
            udf.worker_spec()
        assert excinfo.value.name == "lam"
        # The verdict is cached; the second call must not re-pickle.
        with pytest.raises(UnpicklableUdfError):
            udf.worker_spec()


class TestMergeRemoteEvaluations:
    def _table(self, n=120):
        rng = np.random.default_rng(2)
        return Table.from_columns(
            "mtab",
            {
                "A": [f"a{int(v)}" for v in rng.integers(0, 3, n)],
                "f": [bool(v) for v in rng.random(n) < 0.5],
            },
            hidden_columns=["f"],
        )

    def test_counters_match_a_serial_bulk_call(self):
        table = self._table()
        ids = np.arange(table.num_rows, dtype=np.intp)
        serial = UserDefinedFunction.from_label_column("ser", "f")
        merged = UserDefinedFunction.from_label_column("mer", "f")
        expected = serial.evaluate_rows(table, ids)
        outcomes = np.asarray(
            [bool(v) for v in table.column_array("f", allow_hidden=True)]
        )
        got = merged.merge_remote_evaluations(ids, outcomes)
        assert np.array_equal(np.asarray(expected), np.asarray(got))
        assert merged.counter_snapshot() == serial.counter_snapshot()
        assert merged._cache == serial._cache

    def test_memoized_rows_keep_cached_values_and_count_hits(self):
        table = self._table()
        warm = np.arange(0, 60, dtype=np.intp)
        ids = np.arange(table.num_rows, dtype=np.intp)
        serial = UserDefinedFunction.from_label_column("ser2", "f")
        merged = UserDefinedFunction.from_label_column("mer2", "f")
        serial.evaluate_rows(table, warm)
        merged.evaluate_rows(table, warm)
        expected = serial.evaluate_rows(table, ids)
        outcomes = np.asarray(
            [bool(v) for v in table.column_array("f", allow_hidden=True)]
        )
        got = merged.merge_remote_evaluations(ids, outcomes)
        assert np.array_equal(np.asarray(expected), np.asarray(got))
        snap = merged.counter_snapshot()
        assert snap == serial.counter_snapshot()
        assert snap["cache_hits"] >= warm.size

    def test_shape_mismatch_is_rejected(self):
        merged = UserDefinedFunction.from_label_column("bad", "f")
        with pytest.raises(ValueError):
            merged.merge_remote_evaluations(
                np.arange(4, dtype=np.intp), np.asarray([True, False])
            )
