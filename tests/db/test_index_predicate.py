"""Tests for the group index and predicate expressions."""

import numpy as np
import pytest

from repro.db.errors import ColumnNotFoundError
from repro.db.index import GroupIndex
from repro.db.predicate import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    UdfPredicate,
)
from repro.db.udf import CostLedger, UserDefinedFunction


class TestGroupIndex:
    def test_groups_match_table(self, toy_table):
        index = GroupIndex(toy_table, "A")
        assert index.num_groups == 3
        assert index.group_size(1) == 4
        assert index.group_size(2) == 3
        assert index.group_size(3) == 5

    def test_row_ids_partition_the_table(self, toy_table):
        index = GroupIndex(toy_table, "A")
        all_ids = sorted(
            np.concatenate([index.row_ids(v) for v in index.values]).tolist()
        )
        assert all_ids == list(range(toy_table.num_rows))

    def test_total_rows(self, toy_table):
        assert GroupIndex(toy_table, "A").total_rows() == toy_table.num_rows

    def test_missing_value_gives_empty_group(self, toy_table):
        index = GroupIndex(toy_table, "A")
        assert len(index.row_ids(99)) == 0
        assert index.group_size(99) == 0

    def test_row_ids_are_cached_readonly_views(self, toy_table):
        index = GroupIndex(toy_table, "A")
        first = index.row_ids(1)
        assert first is index.row_ids(1)  # no per-access copy
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 99

    def test_codes_align_with_values(self, toy_table):
        index = GroupIndex(toy_table, "A")
        keys = index.values
        column = toy_table.column_values("A")
        assert [keys[c] for c in index.codes.tolist()] == column
        for value in keys:
            code = index.code_of(value)
            assert (index.codes[index.row_ids(value)] == code).all()
        assert index.code_of("absent") == -1

    def test_grouping_matches_dict_reference(self, toy_table):
        index = GroupIndex(toy_table, "A")
        reference = toy_table.group_row_ids("A")
        assert index.values == list(reference.keys())
        for value, expected in reference.items():
            assert index.row_ids(value).tolist() == expected

    def test_label_counts(self, toy_table):
        index = GroupIndex(toy_table, "A")
        labels = toy_table.column_values("f", allow_hidden=True)
        row_ids = list(toy_table.row_ids)
        totals, positives = index.label_counts(row_ids, [labels[r] for r in row_ids])
        assert totals.tolist() == [index.group_size(v) for v in index.values]
        expected_positives = [
            sum(1 for r in index.row_ids(v).tolist() if labels[r])
            for v in index.values
        ]
        assert positives.tolist() == expected_positives

    def test_catalog_group_index_delegates_to_table(self, toy_table):
        from repro.db.catalog import Catalog

        catalog = Catalog()
        catalog.register_table(toy_table)
        index = catalog.group_index(toy_table.name, "A")
        assert index is toy_table.group_index("A")

    def test_label_counts_skips_out_of_range_rows(self, toy_table):
        index = GroupIndex(toy_table, "A")
        in_range = list(toy_table.row_ids)
        totals, positives = index.label_counts(
            in_range + [999, -1], [True] * len(in_range) + [True, True]
        )
        assert totals.tolist() == [index.group_size(v) for v in index.values]
        assert positives.tolist() == totals.tolist()

    def test_table_group_index_is_shared_and_counted(self, toy_table):
        builds_before = GroupIndex.builds_total
        first = toy_table.group_index("A")
        second = toy_table.group_index("A")
        assert first is second
        assert toy_table.has_group_index("A")
        assert GroupIndex.builds_total == builds_before + 1
        # Hidden-column indexes are cached under a separate key.
        hidden = toy_table.group_index("f", allow_hidden=True)
        assert hidden is not first
        assert toy_table.group_index("f", allow_hidden=True) is hidden

    def test_contains(self, toy_table):
        index = GroupIndex(toy_table, "A")
        assert 1 in index
        assert 99 not in index

    def test_unknown_column_rejected(self, toy_table):
        with pytest.raises(ColumnNotFoundError):
            GroupIndex(toy_table, "nope")

    def test_group_sizes_mapping(self, toy_table):
        assert GroupIndex(toy_table, "A").group_sizes() == {1: 4, 2: 3, 3: 5}

    def test_hidden_column_requires_flag(self, toy_table):
        with pytest.raises(ColumnNotFoundError):
            GroupIndex(toy_table, "f")
        index = GroupIndex(toy_table, "f", allow_hidden=True)
        assert index.num_groups == 2


class TestColumnPredicate:
    def test_equality(self, toy_table):
        predicate = ColumnPredicate("A", "==", 1)
        assert predicate.evaluate(toy_table, 0)
        assert not predicate.evaluate(toy_table, 5)

    def test_comparison_operators(self, toy_table):
        assert ColumnPredicate("A", ">", 2).evaluate(toy_table, 8)
        assert ColumnPredicate("A", "<=", 1).evaluate(toy_table, 3)
        assert ColumnPredicate("A", "!=", 3).evaluate(toy_table, 0)

    def test_in_operator(self, toy_table):
        assert ColumnPredicate("A", "in", (1, 2)).evaluate(toy_table, 5)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ColumnPredicate("A", "~=", 1)

    def test_not_expensive(self):
        assert not ColumnPredicate("A", "==", 1).is_expensive


class TestUdfPredicate:
    def test_evaluation_and_cost_charging(self, toy_table, toy_udf):
        predicate = UdfPredicate(toy_udf)
        ledger = CostLedger()
        assert predicate.evaluate(toy_table, 0, ledger)
        assert not predicate.evaluate(toy_table, 4, ledger)
        assert ledger.evaluated_count == 2

    def test_expected_false(self, toy_table, toy_udf):
        predicate = UdfPredicate(toy_udf, expected=False)
        assert predicate.evaluate(toy_table, 4)

    def test_is_expensive(self, toy_udf):
        assert UdfPredicate(toy_udf).is_expensive

    def test_udfs_iteration(self, toy_udf):
        assert list(UdfPredicate(toy_udf).udfs()) == [toy_udf]


class TestCombinators:
    def test_and_or_not(self, toy_table, toy_udf):
        cheap = ColumnPredicate("A", "==", 2)
        expensive = UdfPredicate(toy_udf)
        conjunction = cheap & expensive
        assert isinstance(conjunction, AndPredicate)
        # Tuple 5 has A == 2 and f == True.
        assert conjunction.evaluate(toy_table, 5)
        # Tuple 4 has A == 2 but f == False.
        assert not conjunction.evaluate(toy_table, 4)

        disjunction = cheap | expensive
        assert isinstance(disjunction, OrPredicate)
        assert disjunction.evaluate(toy_table, 0)  # f true even though A != 2

        negation = ~cheap
        assert isinstance(negation, NotPredicate)
        assert negation.evaluate(toy_table, 0)

    def test_and_evaluates_cheap_predicates_first(self, toy_table):
        calls = []

        def tracking_udf(row):
            calls.append(row["A"])
            return True

        udf = UserDefinedFunction("track", tracking_udf)
        predicate = AndPredicate([UdfPredicate(udf), ColumnPredicate("A", "==", 1)])
        # Row 5 has A == 2, so the cheap predicate fails and the UDF is skipped.
        assert not predicate.evaluate(toy_table, 5)
        assert calls == []

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            AndPredicate([])
        with pytest.raises(ValueError):
            OrPredicate([])

    def test_nested_udf_discovery(self, toy_udf):
        inner = AndPredicate([UdfPredicate(toy_udf), ColumnPredicate("A", "==", 1)])
        outer = NotPredicate(inner)
        assert list(outer.udfs()) == [toy_udf]
