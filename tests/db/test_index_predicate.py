"""Tests for the group index and predicate expressions."""

import pytest

from repro.db.errors import ColumnNotFoundError
from repro.db.index import GroupIndex
from repro.db.predicate import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    UdfPredicate,
)
from repro.db.udf import CostLedger, UserDefinedFunction


class TestGroupIndex:
    def test_groups_match_table(self, toy_table):
        index = GroupIndex(toy_table, "A")
        assert index.num_groups == 3
        assert index.group_size(1) == 4
        assert index.group_size(2) == 3
        assert index.group_size(3) == 5

    def test_row_ids_partition_the_table(self, toy_table):
        index = GroupIndex(toy_table, "A")
        all_ids = sorted(sum((index.row_ids(v) for v in index.values), []))
        assert all_ids == list(range(toy_table.num_rows))

    def test_total_rows(self, toy_table):
        assert GroupIndex(toy_table, "A").total_rows() == toy_table.num_rows

    def test_missing_value_gives_empty_group(self, toy_table):
        index = GroupIndex(toy_table, "A")
        assert index.row_ids(99) == []
        assert index.group_size(99) == 0

    def test_contains(self, toy_table):
        index = GroupIndex(toy_table, "A")
        assert 1 in index
        assert 99 not in index

    def test_unknown_column_rejected(self, toy_table):
        with pytest.raises(ColumnNotFoundError):
            GroupIndex(toy_table, "nope")

    def test_group_sizes_mapping(self, toy_table):
        assert GroupIndex(toy_table, "A").group_sizes() == {1: 4, 2: 3, 3: 5}

    def test_hidden_column_requires_flag(self, toy_table):
        with pytest.raises(ColumnNotFoundError):
            GroupIndex(toy_table, "f")
        index = GroupIndex(toy_table, "f", allow_hidden=True)
        assert index.num_groups == 2


class TestColumnPredicate:
    def test_equality(self, toy_table):
        predicate = ColumnPredicate("A", "==", 1)
        assert predicate.evaluate(toy_table, 0)
        assert not predicate.evaluate(toy_table, 5)

    def test_comparison_operators(self, toy_table):
        assert ColumnPredicate("A", ">", 2).evaluate(toy_table, 8)
        assert ColumnPredicate("A", "<=", 1).evaluate(toy_table, 3)
        assert ColumnPredicate("A", "!=", 3).evaluate(toy_table, 0)

    def test_in_operator(self, toy_table):
        assert ColumnPredicate("A", "in", (1, 2)).evaluate(toy_table, 5)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ColumnPredicate("A", "~=", 1)

    def test_not_expensive(self):
        assert not ColumnPredicate("A", "==", 1).is_expensive


class TestUdfPredicate:
    def test_evaluation_and_cost_charging(self, toy_table, toy_udf):
        predicate = UdfPredicate(toy_udf)
        ledger = CostLedger()
        assert predicate.evaluate(toy_table, 0, ledger)
        assert not predicate.evaluate(toy_table, 4, ledger)
        assert ledger.evaluated_count == 2

    def test_expected_false(self, toy_table, toy_udf):
        predicate = UdfPredicate(toy_udf, expected=False)
        assert predicate.evaluate(toy_table, 4)

    def test_is_expensive(self, toy_udf):
        assert UdfPredicate(toy_udf).is_expensive

    def test_udfs_iteration(self, toy_udf):
        assert list(UdfPredicate(toy_udf).udfs()) == [toy_udf]


class TestCombinators:
    def test_and_or_not(self, toy_table, toy_udf):
        cheap = ColumnPredicate("A", "==", 2)
        expensive = UdfPredicate(toy_udf)
        conjunction = cheap & expensive
        assert isinstance(conjunction, AndPredicate)
        # Tuple 5 has A == 2 and f == True.
        assert conjunction.evaluate(toy_table, 5)
        # Tuple 4 has A == 2 but f == False.
        assert not conjunction.evaluate(toy_table, 4)

        disjunction = cheap | expensive
        assert isinstance(disjunction, OrPredicate)
        assert disjunction.evaluate(toy_table, 0)  # f true even though A != 2

        negation = ~cheap
        assert isinstance(negation, NotPredicate)
        assert negation.evaluate(toy_table, 0)

    def test_and_evaluates_cheap_predicates_first(self, toy_table):
        calls = []

        def tracking_udf(row):
            calls.append(row["A"])
            return True

        udf = UserDefinedFunction("track", tracking_udf)
        predicate = AndPredicate([UdfPredicate(udf), ColumnPredicate("A", "==", 1)])
        # Row 5 has A == 2, so the cheap predicate fails and the UDF is skipped.
        assert not predicate.evaluate(toy_table, 5)
        assert calls == []

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            AndPredicate([])
        with pytest.raises(ValueError):
            OrPredicate([])

    def test_nested_udf_discovery(self, toy_udf):
        inner = AndPredicate([UdfPredicate(toy_udf), ColumnPredicate("A", "==", 1)])
        outer = NotPredicate(inner)
        assert list(outer.udfs()) == [toy_udf]
