"""Tests for ShardedTable / MergedGroupIndex / Catalog.shard_table."""

import numpy as np
import pytest

from repro.db.catalog import Catalog
from repro.db.column import Column, ColumnType
from repro.db.errors import ColumnNotFoundError, SchemaMismatchError
from repro.db.index import GroupIndex, MergedGroupIndex
from repro.db.sharding import ShardedTable, shard_bounds
from repro.db.table import Table


def _columns(n=97, seed=5):
    rng = np.random.default_rng(seed)
    return {
        "grade": [f"g{int(v)}" for v in rng.integers(0, 4, n)],
        "is_good": [bool(v) for v in rng.random(n) < 0.4],
        "amount": [float(v) for v in rng.normal(size=n)],
    }


@pytest.fixture
def columns():
    return _columns()


@pytest.fixture
def plain(columns):
    return Table.from_columns("t", columns, hidden_columns=["is_good"])


@pytest.fixture
def sharded(columns):
    return ShardedTable.from_columns(
        "t", columns, hidden_columns=["is_good"], num_shards=4
    )


class TestShardBounds:
    def test_num_shards_covers_contiguously(self):
        bounds = shard_bounds(10, num_shards=3)
        assert bounds[0] == 0 and bounds[-1] == 10
        assert list(bounds) == sorted(bounds)

    def test_shard_rows(self):
        assert shard_bounds(10, shard_rows=4) == (0, 4, 8, 10)

    def test_single_shard_and_empty(self):
        assert shard_bounds(5, num_shards=1) == (0, 5)
        assert shard_bounds(0, num_shards=3) == (0, 0, 0, 0)

    def test_more_shards_than_rows(self):
        bounds = shard_bounds(2, num_shards=5)
        assert bounds[0] == 0 and bounds[-1] == 2

    def test_rejects_ambiguous_arguments(self):
        with pytest.raises(ValueError):
            shard_bounds(10)
        with pytest.raises(ValueError):
            shard_bounds(10, num_shards=2, shard_rows=3)


class TestShardedTable:
    def test_is_a_table_with_same_surface(self, plain, sharded):
        assert isinstance(sharded, Table)
        assert sharded.num_rows == plain.num_rows
        assert sharded.schema.column_names == plain.schema.column_names
        assert list(sharded.row_ids) == list(plain.row_ids)

    def test_column_values_match_unsharded(self, plain, sharded):
        for column in ("grade", "amount"):
            assert sharded.column_values(column) == plain.column_values(column)
        assert sharded.column_values(
            "is_good", allow_hidden=True
        ) == plain.column_values("is_good", allow_hidden=True)

    def test_column_array_matches_and_is_cached_read_only(self, plain, sharded):
        array = sharded.column_array("grade")
        assert np.array_equal(array, plain.column_array("grade"))
        assert not array.flags.writeable
        assert sharded.column_array("grade") is array

    def test_hidden_column_visibility_enforced(self, sharded):
        with pytest.raises(ColumnNotFoundError):
            sharded.column_values("is_good")
        with pytest.raises(ColumnNotFoundError):
            sharded.column_array("is_good")
        # and stays enforced once the hidden array is cached
        sharded.column_array("is_good", allow_hidden=True)
        with pytest.raises(ColumnNotFoundError):
            sharded.column_array("is_good")

    def test_row_and_value_route_to_owning_shard(self, plain, sharded):
        for row_id in (0, 24, 25, 48, 96):
            assert sharded.row(row_id) == plain.row(row_id)
            assert sharded.value(row_id, "grade") == plain.value(row_id, "grade")
        with pytest.raises(IndexError):
            sharded.row(97)

    def test_rows_iterate_in_global_order(self, plain, sharded):
        assert list(sharded.rows()) == list(plain.rows())

    def test_group_row_ids_matches_reference(self, plain, sharded):
        assert sharded.group_row_ids("grade") == plain.group_row_ids("grade")

    def test_select_rows_returns_plain_table(self, plain, sharded):
        subset = sharded.select_rows([5, 50, 90])
        reference = plain.select_rows([5, 50, 90])
        assert isinstance(subset, Table)
        for column in subset.schema.column_names:
            assert subset.column_values(
                column, allow_hidden=True
            ) == reference.column_values(column, allow_hidden=True)

    def test_with_column_preserves_shard_layout(self, sharded):
        new = Column(name="bucket", column_type=ColumnType.CATEGORICAL)
        values = [f"b{i % 3}" for i in range(sharded.num_rows)]
        augmented = sharded.with_column(new, values)
        assert isinstance(augmented, ShardedTable)
        assert augmented.shard_offsets == sharded.shard_offsets
        assert augmented.column_values("bucket") == values
        with pytest.raises(SchemaMismatchError):
            sharded.with_column(new, values[:-1])

    def test_from_rows_and_from_table_agree(self, plain, columns):
        rows = list(plain.rows(include_hidden=True))
        by_rows = ShardedTable.from_rows("t", rows, schema=plain.schema, num_shards=3)
        by_table = ShardedTable.from_table(plain, num_shards=3)
        for column in plain.schema.column_names:
            assert by_rows.column_values(
                column, allow_hidden=True
            ) == by_table.column_values(column, allow_hidden=True)

    def test_shard_signature_distinguishes_layouts(self, plain, columns):
        a = ShardedTable.from_table(plain, num_shards=2)
        b = ShardedTable.from_table(plain, num_shards=3)
        assert a.shard_signature() != b.shard_signature()
        assert plain.shard_signature() != a.shard_signature()

    def test_more_shards_than_rows_still_exact(self):
        columns = _columns(n=3)
        plain = Table.from_columns("tiny", columns, hidden_columns=["is_good"])
        sharded = ShardedTable.from_columns(
            "tiny", columns, hidden_columns=["is_good"], num_shards=5
        )
        assert sharded.column_values("grade") == plain.column_values("grade")
        merged = sharded.group_index("grade")
        reference = plain.group_index("grade")
        assert merged.values == reference.values
        assert np.array_equal(merged.codes, reference.codes)

    def test_mixed_type_column_falls_back_to_object_dtype(self):
        columns = {"mixed": ["a", "b", 1, 2, "c", 3]}
        plain = Table.from_columns("m", columns)
        sharded = ShardedTable.from_columns("m", columns, num_shards=2)
        # shard 0 is all-str, shard 1 all-int: the concatenated array must
        # not let numpy stringify the ints.
        assert sharded.column_array("mixed").dtype == object
        assert sharded.column_values("mixed") == plain.column_values("mixed")

    def test_numeric_promotion_matches_monolithic_dtype(self):
        # int/float mix splitting exactly along the shard boundary: the
        # sharded array must promote to float64 like np.asarray does on the
        # whole column, not fall back to object dtype.
        columns = {"x": [1, 2, 2.5, 3.5]}
        plain = Table.from_columns("n", columns, column_types={"x": "numeric"})
        sharded = ShardedTable.from_columns(
            "n", columns, column_types={"x": "numeric"}, num_shards=2
        )
        assert sharded.column_array("x").dtype == plain.column_array("x").dtype
        assert np.array_equal(sharded.column_array("x"), plain.column_array("x"))
        assert not np.isnan(sharded.column_array("x")).any()


class TestMergedGroupIndex:
    def test_equals_unsharded_index(self, plain, sharded):
        reference = plain.group_index("grade")
        merged = sharded.group_index("grade")
        assert isinstance(merged, MergedGroupIndex)
        assert merged.values == reference.values
        assert np.array_equal(merged.codes, reference.codes)
        assert merged.group_sizes() == reference.group_sizes()
        for value in reference.values:
            assert np.array_equal(merged.row_ids(value), reference.row_ids(value))

    def test_cached_and_counts_builds(self, sharded):
        before = GroupIndex.builds_total
        first = sharded.group_index("grade")
        built = GroupIndex.builds_total - before
        # one per shard plus the merge wrapper
        assert built == sharded.num_shards + 1
        assert sharded.group_index("grade") is first
        assert GroupIndex.builds_total - before == built

    def test_span_boundaries_report_shard_layout(self, plain, sharded):
        assert sharded.group_index("grade").span_boundaries() == sharded.shard_offsets
        assert plain.group_index("grade").span_boundaries() == (0, plain.num_rows)

    def test_label_counts_match(self, plain, sharded):
        rng = np.random.default_rng(3)
        ids = rng.integers(0, plain.num_rows, 40)
        labels = rng.random(40) < 0.5
        ref_totals, ref_positives = plain.group_index("grade").label_counts(ids, labels)
        got_totals, got_positives = sharded.group_index("grade").label_counts(ids, labels)
        assert np.array_equal(ref_totals, got_totals)
        assert np.array_equal(ref_positives, got_positives)

    def test_parallel_index_build_matches_serial(self, columns):
        serial = ShardedTable.from_columns(
            "t", columns, hidden_columns=["is_good"], num_shards=4, max_workers=1
        )
        parallel = ShardedTable.from_columns(
            "t", columns, hidden_columns=["is_good"], num_shards=4, max_workers=3
        )
        a, b = serial.group_index("grade"), parallel.group_index("grade")
        assert a.values == b.values
        assert np.array_equal(a.codes, b.codes)


class TestCatalogSharding:
    def test_shard_table_replaces_in_place(self, plain):
        catalog = Catalog()
        catalog.register_table(plain)
        sharded = catalog.shard_table("t", num_shards=4)
        assert catalog.table("t") is sharded
        assert isinstance(sharded, ShardedTable)
        assert sharded.name == "t"
        assert sharded.column_values("grade") == plain.column_values("grade")

    def test_resharding_same_count_is_idempotent(self, plain):
        catalog = Catalog()
        catalog.register_table(plain)
        first = catalog.shard_table("t", num_shards=4)
        assert catalog.shard_table("t", num_shards=4) is first
        again = catalog.shard_table("t", num_shards=2)
        assert again is not first and again.num_shards == 2

    def test_group_index_delegates_to_merged_index(self, plain):
        catalog = Catalog()
        catalog.register_table(plain)
        catalog.shard_table("t", num_shards=3)
        assert isinstance(catalog.group_index("t", "grade"), MergedGroupIndex)
