"""Tests for incremental ingest: Table/ShardedTable appends and delta caches."""

import numpy as np
import pytest

from repro.db.errors import SchemaMismatchError
from repro.db.index import GroupIndex, MergedGroupIndex
from repro.db.sharding import ShardedTable
from repro.db.table import Table


def _columns(n, seed=11):
    rng = np.random.default_rng(seed)
    return {
        "grade": [f"g{int(v)}" for v in rng.integers(0, 4, n)],
        "is_good": [bool(v) for v in rng.random(n) < 0.4],
        "amount": [float(v) for v in rng.normal(size=n)],
    }


def _concat(a, b):
    return {name: a[name] + b[name] for name in a}


class TestTableAppend:
    def test_append_columns_extends_rows_and_generation(self):
        table = Table.from_columns("t", _columns(20), hidden_columns=["is_good"])
        delta = _columns(5, seed=99)
        assert table.data_generation == 0
        added = table.append_columns(delta)
        assert added == 5
        assert table.num_rows == 25
        assert table.data_generation == 1
        assert table.column_values("grade")[20:] == delta["grade"]
        assert table.shard_signature() == ("monolithic", 25, 1)

    def test_append_rows_round_trips(self):
        table = Table.from_columns("t", _columns(10), hidden_columns=["is_good"])
        rows = [
            {"grade": "g9", "is_good": True, "amount": 1.5},
            {"grade": "g0", "is_good": False, "amount": -2.0},
        ]
        assert table.append_rows(rows) == 2
        assert table.row(10, include_hidden=True) == rows[0]
        assert table.row(11, include_hidden=True) == rows[1]
        assert table.append_rows([]) == 0

    def test_append_validates_schema(self):
        table = Table.from_columns("t", _columns(10), hidden_columns=["is_good"])
        with pytest.raises(SchemaMismatchError):
            table.append_columns({"grade": ["g1"]})  # missing columns
        with pytest.raises(SchemaMismatchError):
            table.append_columns({**_columns(2), "extra": [1, 2]})
        with pytest.raises(SchemaMismatchError):
            bad = _columns(3)
            bad["grade"] = bad["grade"][:2]  # ragged
            table.append_columns(bad)
        # failed appends leave the table untouched
        assert table.num_rows == 10
        assert table.data_generation == 0

    def test_cached_column_array_is_extended_not_rebuilt(self):
        table = Table.from_columns("t", _columns(30), hidden_columns=["is_good"])
        before = table.column_array("amount")
        delta = _columns(4, seed=7)
        table.append_columns(delta)
        after = table.column_array("amount")
        assert after.size == 34
        assert not after.flags.writeable
        np.testing.assert_array_equal(after[:30], before)
        fresh = Table.from_columns(
            "f", _concat(_columns(30), delta), hidden_columns=["is_good"]
        )
        np.testing.assert_array_equal(after, fresh.column_array("amount"))

    def test_mixed_type_delta_falls_back_to_object_array(self):
        table = Table.from_columns("t", {"A": ["x", "y"]})
        assert table.column_array("A").dtype.kind == "U"
        table.append_columns({"A": [3]})
        array = table.column_array("A")
        assert array.dtype.kind == "O"
        assert array.tolist() == ["x", "y", 3]

    def test_cached_group_index_extended_in_place(self):
        table = Table.from_columns("t", _columns(40), hidden_columns=["is_good"])
        old_index = table.group_index("grade")
        builds = GroupIndex.builds_total
        extensions = GroupIndex.extensions_total
        delta = {"grade": ["g7", "g0"], "is_good": [True, False], "amount": [0.0, 1.0]}
        table.append_columns(delta)
        new_index = table.group_index("grade")
        assert new_index is not old_index
        assert GroupIndex.builds_total == builds  # no from-scratch rebuild
        assert GroupIndex.extensions_total == extensions + 1
        # the pre-append object still describes the pre-append table
        assert old_index.total_rows() == 40
        assert new_index.total_rows() == 42
        assert new_index.group_size("g7") == 1
        assert new_index.row_ids("g7").tolist() == [40]

    def test_empty_append_is_a_noop(self):
        table = Table.from_columns("t", _columns(5), hidden_columns=["is_good"])
        assert table.append_columns({name: [] for name in _columns(0)}) == 0
        assert table.data_generation == 0


class TestShardedAppend:
    def test_append_goes_to_mutable_tail(self):
        table = ShardedTable.from_columns(
            "s", _columns(20), hidden_columns=["is_good"], shard_rows=8
        )
        tail_before = table.shards[-1]
        table.append_columns(_columns(3, seed=3))
        assert table.num_rows == 23
        assert table.shards[-1] is tail_before  # still under the limit
        assert table.shards[-1].num_rows == 7
        assert table.shard_offsets == (0, 8, 16, 23)
        assert table.data_generation == 1

    def test_tail_seal_and_rechunk_boundary(self):
        table = ShardedTable.from_columns(
            "s", _columns(20), hidden_columns=["is_good"], shard_rows=8
        )
        # tail has 4 rows, limit 8: appending 21 rows forces a seal into
        # 8-row chunks with a fresh short tail.
        delta = _columns(21, seed=4)
        table.append_columns(delta)
        assert table.num_rows == 41
        assert all(shard.num_rows <= table.tail_shard_rows for shard in table.shards)
        assert table.shard_offsets == (0, 8, 16, 24, 32, 40, 41)
        # row order/content identical to the monolithic equivalent
        fresh = Table.from_columns(
            "m", _concat(_columns(20), delta), hidden_columns=["is_good"]
        )
        assert table.column_values("grade") == fresh.column_values("grade")
        assert [table.value(i, "grade") for i in range(41)] == fresh.column_values(
            "grade"
        )

    def test_merged_index_survives_append_and_seal_exactly(self):
        base = _columns(20)
        table = ShardedTable.from_columns(
            "s", base, hidden_columns=["is_good"], shard_rows=8
        )
        table.group_index("grade")  # warm the cache pre-append
        delta = _columns(21, seed=4)
        builds = GroupIndex.builds_total
        table.append_columns(delta)
        merged = table.group_index("grade")
        # the seal builds per-new-shard indexes, never a full merged rebuild
        assert isinstance(merged, MergedGroupIndex)
        assert GroupIndex.builds_total - builds <= len(table.shards)
        fresh = Table.from_columns(
            "m", _concat(base, delta), hidden_columns=["is_good"]
        ).group_index("grade")
        assert merged.values == fresh.values
        np.testing.assert_array_equal(merged.codes, fresh.codes)
        for value in fresh.values:
            np.testing.assert_array_equal(merged.row_ids(value), fresh.row_ids(value))
        assert merged.span_boundaries() == table.shard_offsets

    def test_sharded_signature_folds_generation(self):
        table = ShardedTable.from_columns(
            "s", _columns(16), hidden_columns=["is_good"], num_shards=2
        )
        before = table.shard_signature()
        table.append_columns(_columns(1, seed=1))
        after = table.shard_signature()
        assert before != after

    def test_append_rows_routes_through_tail(self):
        table = ShardedTable.from_columns(
            "s", _columns(10), hidden_columns=["is_good"], num_shards=2
        )
        table.append_rows([{"grade": "gz", "is_good": True, "amount": 0.5}])
        assert table.num_rows == 11
        assert table.value(10, "grade") == "gz"


class TestMergedIndexDegenerateLayouts:
    """MergedGroupIndex over empty, single-row and constant-column shards."""

    def _sharded(self, pieces):
        flat = [value for piece in pieces for value in piece]
        plain = Table.from_columns("m", {"A": flat})
        shards = [
            Table(name=f"m#shard{i}", schema=plain.schema, columns={"A": list(piece)})
            for i, piece in enumerate(pieces)
        ]
        sharded = ShardedTable(name="m", schema=plain.schema, shards=shards)
        return plain, sharded

    def _assert_equal(self, plain, sharded):
        reference = plain.group_index("A")
        merged = sharded.group_index("A")
        assert merged.values == reference.values
        np.testing.assert_array_equal(merged.codes, reference.codes)
        assert merged.group_sizes() == reference.group_sizes()
        for value in reference.values:
            np.testing.assert_array_equal(
                merged.row_ids(value), reference.row_ids(value)
            )

    def test_empty_shards_interleaved(self):
        plain, sharded = self._sharded([[], ["a", "b"], [], ["b", "c"], []])
        self._assert_equal(plain, sharded)
        assert sharded.num_shards == 5

    def test_all_shards_empty(self):
        plain, sharded = self._sharded([[], []])
        merged = sharded.group_index("A")
        assert merged.values == []
        assert merged.total_rows() == 0
        assert merged.label_counts([], [])[0].size == 0

    def test_single_row_shards(self):
        plain, sharded = self._sharded([["a"], ["b"], ["a"], ["c"]])
        self._assert_equal(plain, sharded)

    def test_constant_column_shard(self):
        plain, sharded = self._sharded([["k", "k", "k"], ["k", "k"], ["k"]])
        self._assert_equal(plain, sharded)
        merged = sharded.group_index("A")
        assert merged.num_groups == 1
        assert merged.group_size("k") == 6

    def test_degenerate_layout_survives_append(self):
        plain, sharded = self._sharded([[], ["a"], []])
        sharded.group_index("A")
        sharded.append_columns({"A": ["b", "a"]})
        fresh = Table.from_columns("f", {"A": ["a", "b", "a"]})
        merged = sharded.group_index("A")
        reference = fresh.group_index("A")
        assert merged.values == reference.values
        np.testing.assert_array_equal(merged.codes, reference.codes)
        for value in reference.values:
            np.testing.assert_array_equal(
                merged.row_ids(value), reference.row_ids(value)
            )
