"""Shared resource-leak invariant for the test suite.

Generalises the resilience suite's shared-memory check: a test that
crashes workers, tears writes mid-segment or quarantines artifacts must
still leave the process (and its storage directory) clean —

* zero exported shared-memory segments,
* zero still-referenced segment-backed memmap arrays (after a collection
  pass drops garbage tables),
* zero resident bytes and zero pinned segments across every live
  :class:`~repro.db.residency.ResidencyManager` (a lazy table whose
  manager outlives the test has leaked its mappings; in-flight pins must
  all have been released),
* zero ``.tmp`` files from interrupted atomic writes inside the directory
  under test.

Import :func:`assert_no_leaked_resources` from suite ``conftest.py``
autouse fixtures (``tests/resilience``, ``tests/storage``,
``tests/residency``, ``tests/core/test_process_executor.py``) so every
suite asserts the same invariant the same way.
"""

from __future__ import annotations

import gc
import os
from typing import List, Optional

from repro.db.residency import pinned_segments_total, resident_bytes_total
from repro.db.shm import exported_segment_count, release_exports
from repro.db.storage.segments import live_memmap_count


def leaked_temp_files(directory: str) -> List[str]:
    """All ``.tmp`` files (torn atomic writes) under ``directory``."""
    stray: List[str] = []
    for root, _dirs, files in os.walk(directory):
        for filename in files:
            if filename.endswith(".tmp"):
                stray.append(os.path.join(root, filename))
    return stray


def assert_no_leaked_resources(directory: Optional[str] = None) -> None:
    """Assert the process leaked no shm segments, memmaps or temp files.

    ``directory`` (optional) is additionally swept for ``.tmp`` remnants —
    pass the storage directory a test wrote to.  Call from fixture
    teardown, after the test dropped its tables.
    """
    release_exports()
    assert exported_segment_count() == 0, "leaked shared-memory segments"
    # Memmap handles are held by tables; a test's tables become garbage at
    # teardown but may await collection — sweep before judging.
    gc.collect()
    assert live_memmap_count() == 0, (
        f"{live_memmap_count()} segment memmap handle(s) still referenced"
    )
    assert pinned_segments_total() == 0, (
        f"{pinned_segments_total()} segment(s) still pinned after teardown"
    )
    assert resident_bytes_total() == 0, (
        f"{resident_bytes_total()} byte(s) of segment mappings still resident"
    )
    if directory is not None and os.path.isdir(directory):
        stray = leaked_temp_files(directory)
        assert not stray, f"leaked temp files from torn writes: {stray}"
