"""Tests for the QueryService front-end: caching, concurrency, admission."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets.registry import load_dataset
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.errors import BudgetExhaustedError, UnsupportedQueryError
from repro.db.predicate import ColumnPredicate, UdfPredicate
from repro.db.query import SelectQuery
from repro.serving import AdmissionError, QueryService, ServiceConfig
from repro.stats.metrics import result_quality


@pytest.fixture(scope="module")
def serving_dataset():
    return load_dataset("lending_club", random_state=42, scale=0.03)


@pytest.fixture
def serving_setup(serving_dataset):
    catalog = Catalog()
    catalog.register_table(serving_dataset.table)
    udf = serving_dataset.make_udf("served")
    catalog.register_udf(udf)
    return serving_dataset, catalog, udf


def _query(dataset, udf, alpha=0.8, beta=0.8, column="grade", cheap=()):
    return SelectQuery(
        table=dataset.table.name,
        predicate=UdfPredicate(udf),
        cheap_predicates=list(cheap),
        alpha=alpha,
        beta=beta,
        rho=0.8,
        correlated_column=column,
    )


class TestPlanCaching:
    def test_repeated_query_skips_solver_and_sampling(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)

        cold = service.submit(query, seed=0)
        assert cold.metadata["plan_cache"] == "miss"
        warm = service.submit(query, seed=1)
        assert warm.metadata["plan_cache"] == "hit"
        metrics = service.metrics()
        assert metrics["pipeline_runs"] == 1
        assert metrics["plan_hits"] == 1
        # Warm execution pays only for rows never evaluated before; the bulk
        # of its evaluations come from the memo cache filled by the cold run.
        assert warm.metadata["udf_cache"]["calls"] < cold.metadata["udf_cache"]["calls"] / 4

    def test_reordered_cheap_predicates_share_plan(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        a = ColumnPredicate("grade", "!=", "G")
        b = ColumnPredicate("grade", "!=", "F")
        service.submit(_query(dataset, udf, cheap=[a, b]), seed=0)
        warm = service.submit(_query(dataset, udf, cheap=[b, a]), seed=1)
        assert warm.metadata["plan_cache"] == "hit"

    def test_stale_solver_version_entries_are_not_replayed(self, serving_setup):
        """A plan solved by an older solver stack must re-plan, not replay.

        The signature embeds PLAN_CACHE_VERSION, so live processes can never
        produce a collision; this simulates an entry restored from an
        external snapshot by rewriting a fresh entry's version stamp.
        """
        from dataclasses import replace

        from repro.core.constraints import CostModel
        from repro.serving.plan_cache import PLAN_CACHE_VERSION
        from repro.serving.signature import plan_signature

        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        service.submit(query, seed=0)

        cost_model = CostModel(
            retrieval_cost=service.engine.retrieval_cost,
            evaluation_cost=service.engine.evaluation_cost,
        )
        signature = plan_signature(query, cost_model, service._strategy_prototype)
        entry = service.plan_cache.get(signature, record=False)
        assert entry is not None
        assert entry.solver_version == PLAN_CACHE_VERSION
        service.plan_cache.put(
            signature, replace(entry, solver_version=PLAN_CACHE_VERSION - 1)
        )

        misses_before = service.plan_cache.snapshot()["misses"]
        hits_before = service.plan_cache.snapshot()["hits"]
        result = service.submit(query, seed=1)
        assert result.metadata["plan_cache"] == "miss"
        refreshed = service.plan_cache.get(signature, record=False)
        assert refreshed.solver_version == PLAN_CACHE_VERSION
        # The dead entry must be accounted as the miss it behaved as, not as
        # a hit (the bench-regression gate watches the reported hit rate).
        stats = service.plan_cache.snapshot()
        assert stats["misses"] == misses_before + 1
        assert stats["hits"] == hits_before

    def test_warm_results_stay_within_constraints(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        service.submit(query, seed=0)
        satisfied = 0
        runs = 5
        for seed in range(runs):
            result = service.submit(query, seed=seed + 100)
            quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
            if quality.satisfies(query.alpha, query.beta):
                satisfied += 1
        assert satisfied >= runs - 1

    def test_statistics_reused_across_constraints(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        service.submit(_query(dataset, udf, alpha=0.8, beta=0.8), seed=0)
        other = service.submit(_query(dataset, udf, alpha=0.7, beta=0.9), seed=1)
        # Different constraints -> new plan, but the sampling evidence is
        # reused so no fresh UDF evaluations are charged.
        assert other.metadata["plan_cache"] == "miss"
        assert "grade" in other.metadata["stats_cache"]["outcome_hits"]
        assert other.ledger.evaluated_count == 0

    def test_disabled_caches_always_plan(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(
            Engine(catalog), config=ServiceConfig(plan_cache_size=0, stats_cache_size=0)
        )
        query = _query(dataset, udf)
        service.submit(query, seed=0)
        service.submit(query, seed=1)
        assert service.metrics()["pipeline_runs"] == 2

    def test_exact_queries_bypass_caches(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        exact = SelectQuery(
            table=dataset.table.name,
            predicate=UdfPredicate(udf),
            alpha=1.0,
            beta=1.0,
            rho=0.95,
        )
        result = service.submit(exact, seed=0)
        assert set(result.row_ids) == dataset.ground_truth_row_ids()
        assert service.metrics()["exact_queries"] == 1

    def test_audit_does_not_prepay_future_queries(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        # Auditing peeks at every row's truth; that peek must not fill the
        # memo cache, or warm accounting would charge nothing ever after.
        service.submit(query, seed=0, audit=True)
        assert udf.counter_snapshot()["cache_size"] < dataset.num_rows
        warm = service.submit(query, seed=1)
        assert warm.ledger.retrieved_count > 0

    def test_unknown_named_strategy_raises(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = SelectQuery(
            table=dataset.table.name,
            predicate=UdfPredicate(udf),
            alpha=0.8,
            beta=0.8,
            rho=0.8,
            strategy="does_not_exist",
        )
        with pytest.raises(UnsupportedQueryError):
            service.submit(query, seed=0)


class TestConcurrency:
    def test_concurrent_replay_matches_serial(self, serving_setup):
        """N threads over a warm shared service reproduce the serial replay."""
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        queries = [
            _query(dataset, udf, alpha=0.8, beta=0.8),
            _query(dataset, udf, alpha=0.7, beta=0.9),
            _query(dataset, udf, alpha=0.75, beta=0.85),
        ]
        # Warm every signature, then snapshot a serial replay.
        for position, query in enumerate(queries):
            service.submit(query, seed=1000 + position)
        trace = [(queries[i % len(queries)], 7 * i + 13) for i in range(48)]
        serial = [service.submit(query, seed=seed).row_ids for query, seed in trace]

        with ThreadPoolExecutor(max_workers=8) as pool:
            concurrent = list(
                pool.map(lambda item: service.submit(item[0], seed=item[1]).row_ids, trace)
            )
        assert concurrent == serial

    def test_single_flight_plans_once(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        barrier = threading.Barrier(6)

        def request(seed):
            barrier.wait()
            return service.submit(query, seed=seed)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(request, range(6)))
        assert all(len(result.row_ids) > 0 for result in results)
        assert service.metrics()["pipeline_runs"] == 1

    def test_distinct_cold_signatures_progress_independently(self, serving_setup):
        """One signature's stuck flight must not block unrelated signatures.

        The single-flight registry is striped by signature hash; holding one
        stripe's guard (simulating a slow/stuck flight's bookkeeping) must
        leave signatures on other stripes fully serviceable.  Under the old
        single global ``_flight_guard`` this test deadlocks.
        """
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        from repro.core.constraints import CostModel
        from repro.serving.signature import plan_signature

        cost_model = CostModel(
            retrieval_cost=service.engine.retrieval_cost,
            evaluation_cost=service.engine.evaluation_cost,
        )
        # Two queries whose signatures land on different stripes (alpha is
        # scanned until the stripes differ; with 16 stripes this terminates
        # almost immediately).
        blocked_query = _query(dataset, udf, alpha=0.8)
        blocked_stripe = service._flight_stripe(
            plan_signature(blocked_query, cost_model, service._strategy_prototype)
        )
        free_query = None
        for alpha in (0.81, 0.82, 0.83, 0.84, 0.85, 0.86, 0.87, 0.88):
            candidate = _query(dataset, udf, alpha=alpha)
            stripe = service._flight_stripe(
                plan_signature(candidate, cost_model, service._strategy_prototype)
            )
            if stripe != blocked_stripe:
                free_query = candidate
                break
        assert free_query is not None, "no signature found on another stripe"

        service._flight_guards[blocked_stripe].acquire()
        try:
            done = threading.Event()
            outcome = {}

            def request():
                outcome["result"] = service.submit(free_query, seed=1)
                done.set()

            worker = threading.Thread(target=request, daemon=True)
            worker.start()
            assert done.wait(timeout=10.0), (
                "cold signature on a free stripe blocked behind another "
                "stripe's guard"
            )
            assert len(outcome["result"].row_ids) > 0
        finally:
            service._flight_guards[blocked_stripe].release()
        # and the blocked stripe works normally once released
        assert len(service.submit(blocked_query, seed=2).row_ids) > 0

    def test_concurrent_distinct_clients(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        service.submit(query, seed=0)  # warm

        def request(client):
            return service.submit(query, client_id=f"client_{client % 4}", seed=client)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(request, range(32)))
        sessions = service.sessions.snapshot()
        assert len(sessions) == 4
        assert sum(s["admitted"] for s in sessions.values()) == 32


class TestAdmission:
    def test_zero_budget_client_rejected(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        service.sessions.session("broke", budget=0.0)
        with pytest.raises(AdmissionError):
            service.submit(_query(dataset, udf), client_id="broke", seed=0)
        assert service.sessions.session("broke").rejected == 1

    def test_tiny_budget_stopped_mid_flight(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        service.sessions.session("tiny", budget=20.0)
        with pytest.raises(BudgetExhaustedError):
            service.submit(_query(dataset, udf), client_id="tiny", seed=0)
        # The ledger stopped at the budget, and the spend was settled.
        assert service.sessions.session("tiny").spent <= 20.0 + 1e-9

    def test_warm_plan_degrades_to_remaining_budget(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        cold = service.submit(query, seed=0)
        assert cold.metadata["plan_cache"] == "miss"
        # A budget well below the cached plan's expected execution cost
        # triggers the budget-constrained re-solve instead of a failure.
        service.sessions.session("capped", budget=100.0)
        result = service.submit(query, client_id="capped", seed=1)
        assert result.metadata["plan_cache"] == "hit"
        assert result.metadata["degraded_to_budget"] is True
        assert result.ledger.total_cost <= 100.0 + 1e-9
        assert service.metrics()["degraded_plans"] == 1

    def test_concurrent_requests_cannot_jointly_overspend(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        cold = service.submit(query, seed=0)
        budget = cold.ledger.total_cost * 1.5  # enough for ~1.5 full queries
        service.sessions.session("shared", budget=budget)

        def request(seed):
            try:
                return service.submit(query, client_id="shared", seed=seed)
            except (AdmissionError, BudgetExhaustedError):
                return None

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(request, range(12)))
        session = service.sessions.session("shared")
        assert session.spent <= budget + 1e-6
        assert session.reserved == pytest.approx(0.0)

    def test_budgeted_client_concurrency_queues_not_rejects(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        warm_cost = service.submit(query, seed=0).ledger.total_cost
        # Plenty of budget for every request: concurrent arrivals must queue
        # behind each other, not bounce off an in-flight sibling's reservation.
        service.sessions.session("queued", budget=100 * max(warm_cost, 1.0))

        def request(seed):
            return service.submit(query, client_id="queued", seed=seed)

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(request, range(6)))
        assert all(result is not None for result in results)
        assert service.sessions.session("queued").rejected == 0

    def test_reregistered_table_invalidates_caches(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        service.submit(query, seed=0)
        assert service.submit(query, seed=1).metadata["plan_cache"] == "hit"
        # Replace the table with a smaller copy under the same name: stale
        # plans/statistics would return row ids that do not exist any more.
        smaller = dataset.table.select_rows(range(50), name=dataset.table.name)
        catalog.register_table(smaller, replace=True)
        result = service.submit(query, seed=2)
        assert result.metadata["plan_cache"] == "miss"
        assert all(0 <= row_id < 50 for row_id in result.row_ids)

    def test_unbudgeted_clients_unrestricted(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        for seed in range(3):
            service.submit(query, client_id="free", seed=seed)
        session = service.sessions.session("free")
        assert session.admitted == 3
        assert session.spent > 0


class TestUdfCounters:
    def test_metadata_reports_hits_and_misses(self, serving_setup):
        dataset, catalog, udf = serving_setup
        service = QueryService(Engine(catalog))
        query = _query(dataset, udf)
        cold = service.submit(query, seed=0)
        assert cold.metadata["udf_cache"]["cache_misses"] > 0
        warm = service.submit(query, seed=1)
        meta = warm.metadata["udf_cache"]
        # Cache effectiveness is observable end-to-end: the warm pass is
        # dominated by memo hits, with few (often zero) fresh calls.
        assert meta["cache_hits"] > 0
        assert meta["cache_misses"] < cold.metadata["udf_cache"]["cache_misses"] / 4
        assert meta["calls"] == meta["cache_misses"]


class TestGenerationRefresh:
    """Appends bump the data generation; warm entries refresh via the delta path."""

    def _fresh_setup(self, rows=3000, seed=8):
        import numpy as np

        from repro.db.table import Table
        from repro.db.udf import UserDefinedFunction

        rng = np.random.default_rng(seed)
        grades = [f"g{int(v)}" for v in rng.integers(0, 5, rows)]
        rates = {"g0": 0.15, "g1": 0.35, "g2": 0.5, "g3": 0.7, "g4": 0.9}
        labels = [bool(rng.random() < rates[g]) for g in grades]
        table = Table.from_columns(
            "churny", {"grade": grades, "is_good": labels}, hidden_columns=["is_good"]
        )
        udf = UserDefinedFunction.from_label_column("churny_udf", "is_good")
        catalog = Catalog()
        catalog.register_table(table)
        catalog.register_udf(udf)
        return table, udf, catalog

    def _delta(self, rows, seed=77):
        import numpy as np

        rng = np.random.default_rng(seed)
        grades = [f"g{int(v)}" for v in rng.integers(0, 5, rows)]
        return {
            "grade": grades,
            "is_good": [bool(v) for v in rng.random(rows) < 0.5],
        }

    def test_append_turns_next_submit_into_refresh(self):
        table, udf, catalog = self._fresh_setup()
        service = QueryService(Engine(catalog))
        query = SelectQuery(
            "churny", UdfPredicate(udf), alpha=0.8, beta=0.8, rho=0.8,
            correlated_column="grade",
        )
        cold = service.submit(query, seed=0)
        warm = service.submit(query, seed=1)
        assert cold.metadata["plan_cache"] == "miss"
        assert warm.metadata["plan_cache"] == "hit"

        table.append_columns(self._delta(60))
        refreshed = service.submit(query, seed=2, audit=True)
        assert refreshed.metadata["plan_cache"] == "refresh"
        # the refresh reused the cached sampling evidence: far less paid UDF
        # work than the cold run, and quality still holds
        assert refreshed.ledger.evaluated_count < cold.ledger.evaluated_count / 2
        assert refreshed.quality.precision > 0.5

        metrics = service.metrics()
        assert metrics["plan_refreshes"] == 1
        assert metrics["pipeline_runs"] == 1  # only the cold run ran the pipeline
        # the refreshed entry is live again: the next submit is a plain hit
        again = service.submit(query, seed=3)
        assert again.metadata["plan_cache"] == "hit"
        # and its results cover the appended rows (row ids beyond the old end
        # are reachable by the refreshed plan)
        assert table.num_rows == 3060

    def test_refresh_recounts_stats_cache(self):
        table, udf, catalog = self._fresh_setup()
        service = QueryService(Engine(catalog))
        query = SelectQuery(
            "churny", UdfPredicate(udf), alpha=0.85, beta=0.75, rho=0.8,
        )  # automatic column selection -> labelled sample cached
        service.submit(query, seed=0)
        table.append_columns(self._delta(30))
        refreshed = service.submit(query, seed=1)
        assert refreshed.metadata["plan_cache"] == "refresh"
        stats = service.metrics()["stats_cache"]
        assert (
            stats["labeled_samples"]["refreshes"]
            + stats["sample_outcomes"]["refreshes"]
        ) >= 1

    def test_refresh_skips_column_reselection(self):
        table, udf, catalog = self._fresh_setup()
        service = QueryService(Engine(catalog))
        query = SelectQuery(
            "churny", UdfPredicate(udf), alpha=0.8, beta=0.8, rho=0.8,
        )
        cold = service.submit(query, seed=0)
        column = cold.metadata["report"].correlated_column
        table.append_columns(self._delta(25))
        refreshed = service.submit(query, seed=1)
        assert refreshed.metadata["plan_cache"] == "refresh"
        assert refreshed.metadata["report"].correlated_column == column
        assert refreshed.metadata["report"].column_costs is None  # no re-search

    def test_exact_queries_see_appended_rows(self):
        table, udf, catalog = self._fresh_setup(rows=200)
        service = QueryService(Engine(catalog))
        query = SelectQuery("churny", UdfPredicate(udf), alpha=1.0, beta=1.0, rho=0.9)
        before = service.submit(query, seed=0)
        table.append_columns({"grade": ["g4"] * 10, "is_good": [True] * 10})
        after = service.submit(query, seed=1)
        assert set(after.row_ids) >= set(before.row_ids)
        assert set(range(200, 210)) <= set(after.row_ids)

    def test_shrunk_or_replaced_table_still_cold_misses(self):
        table, udf, catalog = self._fresh_setup(rows=500)
        service = QueryService(Engine(catalog))
        query = SelectQuery(
            "churny", UdfPredicate(udf), alpha=0.8, beta=0.8, rho=0.8,
            correlated_column="grade",
        )
        service.submit(query, seed=0)
        # re-registering a different table object invalidates by identity
        replacement, _, _ = self._fresh_setup(rows=500, seed=9)
        catalog.register_table(replacement, replace=True)
        result = service.submit(query, seed=1)
        assert result.metadata["plan_cache"] == "miss"
        assert service.metrics()["plan_refreshes"] == 0
