"""End-to-end observability: traces, metrics and latency through the service.

The load-bearing test here is the differential one pinned by the PR's
acceptance criteria: a sharded, parallel, refresh-path query must produce a
single coherent trace tree whose per-span ``udf_evals`` deltas sum *exactly*
to the query ledger's ``evaluated_count`` — serial sections attribute work
by ledger diffing, parallel shard spans by the exact amounts charged under
the executor's ledger lock, and nothing may be double-counted or dropped.
"""

from __future__ import annotations

import re
import threading
import time

import numpy as np
import pytest

from repro.db.catalog import Catalog
from repro.db.engine import Engine, metadata_schema
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.sharding import ShardedTable
from repro.db.table import Table
from repro.db.udf import UserDefinedFunction
from repro.obs import CollectingTraceSink, disable_metrics, enable_metrics
from repro.serving import QueryService, ServiceConfig
from repro.solvers.linear import InfeasibleProblemError

SHARD_SPAN = re.compile(r"^shard:\d+$")


@pytest.fixture(autouse=True)
def _restore_null_registry():
    yield
    disable_metrics()


def _columns(rows, seed=8):
    rng = np.random.default_rng(seed)
    grades = [f"g{int(v)}" for v in rng.integers(0, 5, rows)]
    rates = {"g0": 0.15, "g1": 0.35, "g2": 0.5, "g3": 0.7, "g4": 0.9}
    labels = [bool(rng.random() < rates[g]) for g in grades]
    return {"grade": grades, "is_good": labels}


def _setup(rows=4000, shards=None, max_workers=None, seed=8):
    columns = _columns(rows, seed=seed)
    if shards:
        table = ShardedTable.from_columns(
            "traced", columns, hidden_columns=["is_good"],
            num_shards=shards, max_workers=max_workers,
        )
    else:
        table = Table.from_columns("traced", columns, hidden_columns=["is_good"])
    udf = UserDefinedFunction.from_label_column("traced_udf", "is_good")
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    return table, udf, catalog


def _query(udf, alpha=0.8, beta=0.8, column="grade"):
    return SelectQuery(
        "traced", UdfPredicate(udf), alpha=alpha, beta=beta, rho=0.8,
        correlated_column=column,
    )


class TestTraceWorkExactness:
    """Per-span work deltas must sum exactly to the query ledger."""

    def _assert_exact(self, trace, result):
        assert trace.work_total("udf_evals") == result.ledger.evaluated_count
        assert trace.work_total("retrievals") == result.ledger.retrieved_count

    def test_sharded_parallel_refresh_path_is_exact(self):
        """The acceptance differential: sharded + parallel + refresh,
        one tree per query, per-span deltas summing to the ledger total."""
        table, udf, catalog = _setup(shards=4, max_workers=3)
        service = QueryService(
            Engine(catalog), config=ServiceConfig(executor="thread", max_workers=3)
        )
        sink = CollectingTraceSink()
        service.set_trace_sink(sink)
        query = _query(udf)

        cold = service.submit(query, seed=0)
        warm = service.submit(query, seed=1)
        table.append_columns(_columns(80, seed=77))
        refreshed = service.submit(query, seed=2)
        assert cold.metadata["plan_cache"] == "miss"
        assert warm.metadata["plan_cache"] == "hit"
        assert refreshed.metadata["plan_cache"] == "refresh"

        traces = sink.traces
        assert len(traces) == 3
        for trace, result in zip(traces, (cold, warm, refreshed)):
            self._assert_exact(trace, result)
        # the refresh trace contains the refresh span and shard spans
        names = {s.name for s in traces[-1].spans}
        assert "refresh" in names
        assert any(SHARD_SPAN.match(name) for name in names)

    def test_serial_cold_and_warm_paths_are_exact(self):
        table, udf, catalog = _setup()
        service = QueryService(Engine(catalog))
        sink = CollectingTraceSink()
        service.set_trace_sink(sink)
        query = _query(udf)
        cold = service.submit(query, seed=0)
        warm = service.submit(query, seed=1)
        for trace, result in zip(sink.traces, (cold, warm)):
            self._assert_exact(trace, result)

    def test_exact_query_path_is_exact(self):
        table, udf, catalog = _setup(rows=400)
        service = QueryService(Engine(catalog))
        sink = CollectingTraceSink()
        service.set_trace_sink(sink)
        result = service.submit(
            SelectQuery("traced", UdfPredicate(udf), alpha=1.0, beta=1.0, rho=0.9),
            seed=0,
        )
        # the exact scan runs outside the pipeline spans; the root span's
        # ledger-free tree must still not under- or over-count: nothing is
        # attributed, and nothing is invented
        assert sink.traces[0].work_total("udf_evals") <= result.ledger.evaluated_count


class TestShardSpans:
    def test_shard_spans_parent_under_execute(self):
        table, udf, catalog = _setup(shards=4, max_workers=3)
        service = QueryService(
            Engine(catalog), config=ServiceConfig(executor="thread", max_workers=3)
        )
        sink = CollectingTraceSink()
        service.set_trace_sink(sink)
        service.submit(_query(udf), seed=0)

        trace = sink.traces[0]
        by_id = {s.span_id: s for s in trace.spans}
        execute = next(s for s in trace.spans if s.name == "execute")
        shard_spans = [s for s in trace.spans if SHARD_SPAN.match(s.name)]
        assert shard_spans, "parallel execution produced no shard spans"
        for shard in shard_spans:
            assert shard.parent_id == execute.span_id
            assert by_id[shard.parent_id].trace is trace
        # deterministic names, unique within the execute span
        names = [s.name for s in shard_spans]
        assert len(set(names)) == len(names)

    def test_shard_span_names_are_reproducible(self):
        def run():
            table, udf, catalog = _setup(shards=4, max_workers=3)
            service = QueryService(
            Engine(catalog), config=ServiceConfig(executor="thread", max_workers=3)
        )
            sink = CollectingTraceSink()
            service.set_trace_sink(sink)
            service.submit(_query(udf), seed=0)
            return sorted(
                s.name for s in sink.traces[0].spans if SHARD_SPAN.match(s.name)
            )

        assert run() == run()


class TestConcurrentTraceIsolation:
    def test_no_cross_query_leakage_under_concurrent_submits(self):
        """Concurrent submits through the striped single-flight registry
        must yield disjoint span trees, each internally consistent."""
        table, udf, catalog = _setup()
        service = QueryService(Engine(catalog))
        sink = CollectingTraceSink()
        service.set_trace_sink(sink)
        queries = [_query(udf, alpha=a) for a in (0.7, 0.75, 0.8, 0.85)]
        barrier = threading.Barrier(len(queries) * 2)
        errors = []

        def run(position, query):
            barrier.wait()
            try:
                service.submit(query, seed=position)
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(position, query))
            for position, query in enumerate(
                [query for query in queries for _ in range(2)]
            )
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        traces = sink.traces
        assert len(traces) == len(threads)
        seen_ids = set()
        for trace in traces:
            span_ids = {s.span_id for s in trace.spans}
            for s in trace.spans:
                assert s.trace is trace  # no span leaked into another tree
                assert s.parent_id is None or s.parent_id in span_ids
            assert trace.query_id not in seen_ids
            seen_ids.add(trace.query_id)
            assert sum(1 for s in trace.spans if s.name == "plan-lookup") == 1


class TestFlightWaits:
    def test_blocked_flight_is_counted_and_spanned(self):
        from repro.core.constraints import CostModel
        from repro.serving.signature import plan_signature

        table, udf, catalog = _setup()
        service = QueryService(Engine(catalog))
        sink = CollectingTraceSink()
        service.set_trace_sink(sink)
        query = _query(udf)
        cost_model = CostModel(
            retrieval_cost=service.engine.retrieval_cost,
            evaluation_cost=service.engine.evaluation_cost,
        )
        signature = plan_signature(query, cost_model, service._strategy_prototype)

        lock = service._flight_lock(signature)
        lock.acquire()
        try:
            worker = threading.Thread(target=service.submit, kwargs={"query": query, "seed": 0})
            worker.start()
            deadline = time.monotonic() + 5.0
            while service.metrics()["flight_waits"] < 1:
                assert time.monotonic() < deadline, "flight wait never observed"
                time.sleep(0.005)
        finally:
            lock.release()
        worker.join()
        service._release_flight(signature, lock)
        assert service.metrics()["flight_waits"] == 1
        assert any(
            s.name == "flight-wait" for trace in sink.traces for s in trace.spans
        )


class TestMetadataContract:
    def test_schema_documents_reserved_keys(self):
        schema = metadata_schema()
        assert {
            "strategy", "plan_cache", "fallback_reason",
            "session", "stats_cache", "udf_cache",
        } <= set(schema)
        assert all(isinstance(v, str) and v for v in schema.values())

    def test_observed_metadata_matches_contract(self):
        table, udf, catalog = _setup()
        service = QueryService(Engine(catalog))
        query = _query(udf)
        cold = service.submit(query, seed=0, client_id="c")
        warm = service.submit(query, seed=1, client_id="c")
        for result in (cold, warm):
            assert result.metadata["plan_cache"] in ("hit", "miss", "refresh")
            assert "session" in result.metadata
        table.append_columns(_columns(50, seed=5))
        refreshed = service.submit(query, seed=2)
        assert refreshed.metadata["plan_cache"] == "refresh"


class TestEngineFallbackCounter:
    def test_strategy_leaked_infeasibility_is_counted(self):
        class Infeasible:
            def run(self, table, query, ledger):
                raise InfeasibleProblemError("no feasible plan")

        table, udf, catalog = _setup(rows=300)
        engine = Engine(catalog)
        engine.register_strategy("bad", Infeasible())
        registry = enable_metrics()
        result = engine.execute(_query(udf), strategy="bad")
        assert engine.fallback_total == 1
        assert result.metadata["fallback_reason"].startswith("infeasible constraints")
        assert registry.snapshot()["counters"]["repro_engine_fallback_total"] == 1.0
        # the fallback answered exhaustively: result is the exact answer
        assert set(result.row_ids) == engine.ground_truth(_query(udf))


class TestServiceSnapshots:
    def test_latency_snapshot_paths_and_quantiles(self):
        table, udf, catalog = _setup()
        service = QueryService(Engine(catalog))
        query = _query(udf)
        service.submit(query, seed=0)
        service.submit(query, seed=1)
        latency = service.latency_snapshot()
        assert latency["all"]["count"] == 2
        assert latency["miss"]["count"] == 1
        assert latency["hit"]["count"] == 1
        for stats in latency.values():
            assert stats["p50_ms"] is not None
            assert stats["p50_ms"] <= stats["p99_ms"] <= stats["max_ms"]

    def test_metrics_snapshot_bundles_everything(self):
        table, udf, catalog = _setup()
        service = QueryService(Engine(catalog))
        enable_metrics()
        service.submit(_query(udf), seed=0)
        snap = service.metrics_snapshot()
        assert set(snap) == {"serving", "latency_ms", "registry"}
        assert snap["serving"]["queries"] == 1
        assert snap["registry"]["counters"]["repro_serving_queries_total"] == 1.0
        assert snap["registry"]["counters"]["repro_cache_misses_total{cache=\"plans\"}"] == 1.0

    def test_registry_mirrors_match_source_counters(self):
        table, udf, catalog = _setup()
        service = QueryService(Engine(catalog))
        enable_metrics()
        query = _query(udf)
        service.submit(query, seed=0)
        service.submit(query, seed=1)
        counters = service.metrics_snapshot()["registry"]["counters"]
        serving = service.metrics()
        assert counters["repro_serving_queries_total"] == serving["queries"]
        assert counters["repro_serving_plan_hits_total"] == serving["plan_hits"]
        assert (
            counters['repro_cache_hits_total{cache="plans"}']
            == serving["plan_cache"]["hits"]
        )
        udf_snapshot = udf.counter_snapshot()
        assert (
            counters['repro_udf_evaluations_total{udf="traced_udf"}']
            == udf_snapshot["cache_misses"]
        )

    def test_disabled_registry_keeps_counters_identical(self):
        """Instrumentation off vs on must not change what queries compute."""

        def run(instrumented):
            table, udf, catalog = _setup()
            service = QueryService(Engine(catalog))
            if instrumented:
                enable_metrics()
                service.set_trace_sink(CollectingTraceSink())
            query = _query(udf)
            results = [service.submit(query, seed=s) for s in range(3)]
            disable_metrics()
            return (
                [sorted(r.row_ids) for r in results],
                [r.ledger.evaluated_count for r in results],
                udf.counter_snapshot(),
            )

        assert run(False) == run(True)

    def test_broken_sink_never_fails_queries(self):
        table, udf, catalog = _setup()
        service = QueryService(Engine(catalog))

        def explode(trace):
            raise RuntimeError("sink down")

        service.set_trace_sink(explode)
        result = service.submit(_query(udf), seed=0)
        assert len(result.row_ids) >= 0  # query succeeded
        assert service.metrics()["trace_sink_errors"] == 1
        service.set_trace_sink(None)
        service.submit(_query(udf), seed=1)
        assert service.metrics()["trace_sink_errors"] == 1
