"""Tests for canonical query signatures (plan-cache keys)."""

from repro.core.constraints import CostModel
from repro.db.predicate import AndPredicate, ColumnPredicate, NotPredicate, OrPredicate, UdfPredicate
from repro.db.query import SelectQuery
from repro.db.udf import UserDefinedFunction
from repro.serving.signature import canonical_predicate, plan_signature, strategy_fingerprint


def _udf(name="f"):
    return UserDefinedFunction(name=name, func=lambda row: True)


class TestCanonicalPredicate:
    def test_reordered_conjunction_hashes_equal(self):
        udf = _udf()
        a = ColumnPredicate("grade", "==", "A")
        b = ColumnPredicate("income", ">", 50_000)
        c = UdfPredicate(udf)
        left = AndPredicate([a, b, c])
        right = AndPredicate([c, a, b])
        assert canonical_predicate(left) == canonical_predicate(right)
        assert hash(canonical_predicate(left)) == hash(canonical_predicate(right))

    def test_reordered_disjunction_hashes_equal(self):
        a = ColumnPredicate("x", "==", 1)
        b = ColumnPredicate("y", "==", 2)
        assert canonical_predicate(OrPredicate([a, b])) == canonical_predicate(
            OrPredicate([b, a])
        )

    def test_and_differs_from_or(self):
        a = ColumnPredicate("x", "==", 1)
        b = ColumnPredicate("y", "==", 2)
        assert canonical_predicate(AndPredicate([a, b])) != canonical_predicate(
            OrPredicate([a, b])
        )

    def test_negation_distinguished(self):
        a = ColumnPredicate("x", "==", 1)
        assert canonical_predicate(a) != canonical_predicate(NotPredicate(a))

    def test_udf_identified_by_name_and_polarity(self):
        u = _udf("check")
        assert canonical_predicate(UdfPredicate(u)) == canonical_predicate(
            UdfPredicate(_udf("check"))
        )
        assert canonical_predicate(UdfPredicate(u, expected=True)) != canonical_predicate(
            UdfPredicate(u, expected=False)
        )

    def test_collection_operands_order_insensitive(self):
        left = ColumnPredicate("grade", "in", ["A", "B", "C"])
        right = ColumnPredicate("grade", "in", ["C", "A", "B"])
        assert canonical_predicate(left) == canonical_predicate(right)


class TestPlanSignature:
    def _query(self, udf, cheap):
        return SelectQuery(
            table="loans",
            predicate=UdfPredicate(udf),
            cheap_predicates=list(cheap),
            alpha=0.8,
            beta=0.8,
            rho=0.8,
            correlated_column="grade",
        )

    def test_reordered_cheap_predicates_hash_equal(self):
        udf = _udf()
        a = ColumnPredicate("grade", "==", "A")
        b = ColumnPredicate("term", "==", 36)
        cost = CostModel()
        first = plan_signature(self._query(udf, [a, b]), cost)
        second = plan_signature(self._query(udf, [b, a]), cost)
        assert first == second
        assert hash(first) == hash(second)

    def test_float_noise_folded(self):
        udf = _udf()
        query = self._query(udf, [])
        noisy = SelectQuery(
            table="loans",
            predicate=UdfPredicate(udf),
            alpha=0.8 + 1e-15,
            beta=0.8,
            rho=0.8,
            correlated_column="grade",
        )
        cost = CostModel()
        assert plan_signature(query, cost) == plan_signature(noisy, cost)

    def test_different_constraints_differ(self):
        udf = _udf()
        query = self._query(udf, [])
        other = SelectQuery(
            table="loans",
            predicate=UdfPredicate(udf),
            alpha=0.9,
            beta=0.8,
            rho=0.8,
            correlated_column="grade",
        )
        cost = CostModel()
        assert plan_signature(query, cost) != plan_signature(other, cost)

    def test_cost_model_part_of_key(self):
        udf = _udf()
        query = self._query(udf, [])
        assert plan_signature(query, CostModel(1.0, 3.0)) != plan_signature(
            query, CostModel(1.0, 10.0)
        )

    def test_solver_version_part_of_key(self):
        from repro.serving.plan_cache import PLAN_CACHE_VERSION

        udf = _udf()
        signature = plan_signature(self._query(udf, []), CostModel())
        assert PLAN_CACHE_VERSION in signature
        # Plans from a previous solver stack can never share a signature.
        assert signature.index(PLAN_CACHE_VERSION) == 1

    def test_identically_configured_strategies_share_keys(self):
        from repro.core.pipeline import IntelSample

        udf = _udf()
        query = self._query(udf, [])
        cost = CostModel()
        first = plan_signature(query, cost, IntelSample(random_state=1))
        second = plan_signature(query, cost, IntelSample(random_state=99))
        assert first == second  # the seed is not plan-affecting configuration

    def test_differently_configured_strategies_differ(self):
        from repro.core.pipeline import IntelSample

        udf = _udf()
        query = self._query(udf, [])
        cost = CostModel()
        assert plan_signature(query, cost, IntelSample()) != plan_signature(
            query, cost, IntelSample(use_virtual_column=True)
        )

    def test_strategy_fingerprint_hashable(self):
        from repro.core.pipeline import IntelSample

        hash(strategy_fingerprint(IntelSample()))
