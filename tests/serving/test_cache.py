"""Tests for the serving-layer LRU/TTL cache."""

import pytest

from repro.serving.cache import LRUCache


class FakeClock:
    """A manually advanced clock for deterministic TTL tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_existing_key_without_eviction(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0

    def test_zero_size_disables_cache(self):
        cache = LRUCache(max_size=0)
        cache.put("a", 1)
        assert not cache.enabled
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_unbounded_cache_never_evicts(self):
        cache = LRUCache(max_size=None)
        for i in range(500):
            cache.put(i, i)
        assert len(cache) == 500
        assert cache.stats.evictions == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(max_size=-1)


class TestTTL:
    def test_expired_entries_count_as_misses(self):
        clock = FakeClock()
        cache = LRUCache(max_size=10, ttl=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(4.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        assert cache.stats.expirations == 1

    def test_contains_respects_ttl(self):
        clock = FakeClock()
        cache = LRUCache(max_size=10, ttl=1.0, clock=clock)
        cache.put("a", 1)
        assert "a" in cache
        clock.advance(2.0)
        assert "a" not in cache

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(ttl=0.0)


class TestStats:
    def test_hit_rate_accounting(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        snapshot = cache.stats.snapshot()
        assert snapshot["puts"] == 1
