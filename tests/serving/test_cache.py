"""Tests for the serving-layer LRU/TTL cache."""

import pytest

from repro.serving.cache import LRUCache


class FakeClock:
    """A manually advanced clock for deterministic TTL tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_existing_key_without_eviction(self):
        cache = LRUCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0

    def test_zero_size_disables_cache(self):
        cache = LRUCache(max_size=0)
        cache.put("a", 1)
        assert not cache.enabled
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_unbounded_cache_never_evicts(self):
        cache = LRUCache(max_size=None)
        for i in range(500):
            cache.put(i, i)
        assert len(cache) == 500
        assert cache.stats.evictions == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(max_size=-1)


class TestTTL:
    def test_expired_entries_count_as_misses(self):
        clock = FakeClock()
        cache = LRUCache(max_size=10, ttl=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(4.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        assert cache.stats.expirations == 1

    def test_contains_respects_ttl(self):
        clock = FakeClock()
        cache = LRUCache(max_size=10, ttl=1.0, clock=clock)
        cache.put("a", 1)
        assert "a" in cache
        clock.advance(2.0)
        assert "a" not in cache

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(ttl=0.0)


class TestPurgeExpired:
    """Opportunistic reclamation of entries nobody ever looks up again."""

    def test_explicit_purge_reclaims_untouched_expired_entries(self):
        clock = FakeClock()
        cache = LRUCache(max_size=None, ttl=5.0, clock=clock)
        for key in range(10):
            cache.put(key, key)
        clock.advance(3.0)
        cache.put("fresh", 1)
        clock.advance(3.0)  # the first 10 are now expired, "fresh" is not
        reclaimed = cache.purge_expired()
        assert reclaimed == 10
        assert len(cache) == 1
        assert "fresh" in cache
        assert cache.stats.purged == 10
        assert cache.stats.expirations == 10
        # no lookups happened: hit/miss statistics are untouched
        assert cache.stats.hits == cache.stats.misses == 0

    def test_put_sweeps_amortised(self):
        clock = FakeClock()
        cache = LRUCache(max_size=None, ttl=1.0, clock=clock)
        cache.put("stale", 1)
        clock.advance(2.0)
        # Never look "stale" up again; enough puts must reclaim it anyway.
        for position in range(LRUCache.PURGE_EVERY_PUTS):
            cache.put(("churn", position), position)
        assert "stale" not in cache.keys()
        assert cache.stats.purged >= 1

    def test_purge_without_ttl_is_noop(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        assert cache.purge_expired() == 0
        assert cache.get("a") == 1


class TestStats:
    def test_hit_rate_accounting(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        snapshot = cache.stats.snapshot()
        assert snapshot["puts"] == 1

    def test_snapshot_is_atomic_and_includes_size(self):
        cache = LRUCache(max_size=4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("gone")
        snapshot = cache.snapshot()
        assert snapshot == {
            "hits": 1,
            "misses": 1,
            "puts": 2,
            "evictions": 0,
            "expirations": 0,
            "purged": 0,
            "refreshes": 0,
            "hit_rate": 0.5,
            "size": 2,
        }

    def test_snapshot_can_be_polled_under_load(self):
        """Metric polling takes the lock once per snapshot, not per field."""
        import threading

        cache = LRUCache(max_size=64)
        stop = threading.Event()

        def churn():
            position = 0
            while not stop.is_set():
                cache.put(position % 128, position)
                cache.get((position + 1) % 128)
                position += 1

        worker = threading.Thread(target=churn, daemon=True)
        worker.start()
        try:
            for _ in range(200):
                snapshot = cache.snapshot()
                assert snapshot["hits"] + snapshot["misses"] >= 0
                assert 0 <= snapshot["size"] <= 64
        finally:
            stop.set()
            worker.join(timeout=5.0)

    def test_clock_not_called_under_lock(self):
        """A slow injected clock must not be invoked while the lock is held."""
        import threading

        cache = LRUCache(max_size=4, ttl=100.0)
        holding = threading.Event()

        def clock():
            # The cache lock must be free while the clock runs (the lock is
            # an RLock, so a blind acquire would succeed reentrantly; check
            # ownership instead).
            assert not cache._lock._is_owned(), (
                "clock invoked while the cache lock was held"
            )
            holding.set()
            return 0.0

        cache._clock = clock
        cache.put("a", 1)
        cache.get("a")
        assert "a" in cache
        assert holding.is_set()
