"""Tests for the vectorised batch execution backend."""

import pytest

from repro.core.constraints import QueryConstraints
from repro.core.executor import PlanExecutor
from repro.core.pipeline import IntelSample
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.datasets.registry import load_dataset
from repro.db.index import GroupIndex
from repro.db.udf import CostLedger
from repro.serving.batch_executor import BatchExecutor
from repro.stats.metrics import result_quality

DATASETS = ("lending_club", "census", "marketing")


class TestDeterministicPlans:
    """With 0/1 probabilities there is no randomness: backends must agree."""

    @pytest.mark.parametrize("retrieve,evaluate", [(1.0, 1.0), (1.0, 0.0), (0.0, 0.0)])
    def test_matches_serial_executor_exactly(self, toy_table, toy_udf, toy_index, retrieve, evaluate):
        plan = ExecutionPlan(
            {key: GroupDecision(retrieve=retrieve, evaluate=evaluate) for key in toy_index.values}
        )
        serial = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        toy_udf.reset()
        batch = BatchExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        assert batch.returned_row_ids == serial.returned_row_ids
        assert batch.ledger.retrieved_count == serial.ledger.retrieved_count
        assert batch.ledger.evaluated_count == serial.ledger.evaluated_count

    def test_mixed_deterministic_plan(self, toy_table, toy_udf, toy_index):
        decisions = {}
        for position, key in enumerate(toy_index.values):
            cycle = position % 3
            decisions[key] = GroupDecision(
                retrieve=1.0 if cycle < 2 else 0.0,
                evaluate=1.0 if cycle == 0 else 0.0,
            )
        plan = ExecutionPlan(decisions)
        serial = PlanExecutor(random_state=1).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        toy_udf.reset()
        batch = BatchExecutor(random_state=1).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        assert batch.returned_row_ids == serial.returned_row_ids

    def test_sampled_positives_returned_for_free(self, toy_table, toy_udf, toy_index):
        from repro.sampling.sampler import GroupSampler
        from repro.sampling.schemes import ConstantScheme

        sampler = GroupSampler(random_state=3)
        allocation = ConstantScheme(2).allocate(toy_index.group_sizes())
        outcome = sampler.sample(toy_table, toy_index, toy_udf, allocation, CostLedger())
        plan = ExecutionPlan.discard_everything(toy_index.values)
        result = BatchExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger(), sample_outcome=outcome
        )
        assert sorted(result.returned_row_ids) == sorted(outcome.positive_row_ids())
        assert result.ledger.retrieved_count == 0


class TestSeedDeterminism:
    @pytest.mark.parametrize("dataset_name", DATASETS)
    def test_fixed_seed_reproduces_row_ids(self, dataset_name):
        dataset = load_dataset(dataset_name, random_state=11, scale=0.02)
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)

        def run():
            udf = dataset.make_udf(f"det_{dataset_name}")
            strategy = IntelSample(
                random_state=77,
                executor_factory=lambda rng: BatchExecutor(random_state=rng),
            )
            return strategy.answer(
                dataset.table,
                udf,
                constraints,
                CostLedger(),
                correlated_column=dataset.correlated_column,
            )

        first, second = run(), run()
        assert first.row_ids == second.row_ids
        assert first.ledger.evaluated_count == second.ledger.evaluated_count

    def test_different_seeds_differ(self):
        dataset = load_dataset("lending_club", random_state=11, scale=0.02)
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
        results = []
        for seed in (1, 2):
            strategy = IntelSample(
                random_state=seed,
                executor_factory=lambda rng: BatchExecutor(random_state=rng),
            )
            results.append(
                strategy.answer(
                    dataset.table,
                    dataset.make_udf(f"seed_{seed}"),
                    constraints,
                    CostLedger(),
                    correlated_column="grade",
                ).row_ids
            )
        assert results[0] != results[1]


class TestStatisticalEquivalence:
    def test_batch_backend_meets_constraints(self, small_lending_club):
        """The vectorised backend keeps the pipeline's quality guarantees."""
        dataset = small_lending_club
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
        satisfied = 0
        runs = 5
        for seed in range(runs):
            strategy = IntelSample(
                random_state=seed,
                executor_factory=lambda rng: BatchExecutor(random_state=rng),
            )
            result = strategy.answer(
                dataset.table,
                dataset.make_udf(f"batch_{seed}"),
                constraints,
                CostLedger(),
                correlated_column="grade",
            )
            quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
            if quality.satisfies(constraints.alpha, constraints.beta):
                satisfied += 1
        assert satisfied >= runs - 1

    def test_batch_cheaper_than_exhaustive(self, small_lending_club):
        dataset = small_lending_club
        ledger = CostLedger()
        IntelSample(
            random_state=5,
            executor_factory=lambda rng: BatchExecutor(random_state=rng),
        ).answer(
            dataset.table,
            dataset.make_udf("batch_cheap"),
            QueryConstraints(alpha=0.8, beta=0.8, rho=0.8),
            ledger,
            correlated_column="grade",
        )
        assert ledger.evaluated_count < dataset.num_rows


class TestFreeMemoized:
    def test_memoized_rows_not_recharged(self, toy_table, toy_udf, toy_index):
        plan = ExecutionPlan.evaluate_everything(toy_index.values)
        # First pass pays for every row and fills the memo cache.
        first = BatchExecutor(random_state=0, free_memoized=True).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        assert first.ledger.evaluated_count == toy_table.num_rows
        # Second pass over the same rows is free under serving accounting.
        second = BatchExecutor(random_state=1, free_memoized=True).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        assert second.ledger.evaluated_count == 0
        assert sorted(second.returned_row_ids) == sorted(first.returned_row_ids)

    def test_paper_accounting_recharges(self, toy_table, toy_udf, toy_index):
        plan = ExecutionPlan.evaluate_everything(toy_index.values)
        BatchExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        repeat = BatchExecutor(random_state=1).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        assert repeat.ledger.evaluated_count == toy_table.num_rows
