"""The asyncio front-end: coalescing, load shedding, and the 1.3 API.

Covers the api_redesign surface: ``submit_async`` semantics (deterministic
coalescing with zero extra UDF work, typed ``Overloaded`` shedding that is
always counted), the ``ServiceConfig``/legacy-kwarg shims, the unified
``stats()`` snapshot with its legacy aliases, and the ``ExecutorAware``
constructor validation that replaced the old ``hasattr`` duck-typing.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.core.executor import ExecutorAware
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.table import Table
from repro.db.udf import UserDefinedFunction
from repro.obs.metrics import MetricsRegistry, disable_metrics, enable_metrics
from repro.serving import Overloaded, QueryService, ServiceConfig
from repro.serving.config import SERVICE_STATS_SCHEMA, ServiceStats


def _table(n=300, groups=4, seed=9, name="atab"):
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        name,
        {
            "A": [f"a{int(v)}" for v in rng.integers(0, groups, n)],
            "f": [bool(v) for v in rng.random(n) < 0.4],
        },
        hidden_columns=["f"],
    )


def _setup(udf=None, name="atab"):
    catalog = Catalog()
    catalog.register_table(_table(name=name))
    udf = udf or UserDefinedFunction.from_label_column("audf", "f")
    catalog.register_udf(udf)
    return catalog, udf


def _query(udf, table="atab", alpha=0.7, beta=0.7):
    return SelectQuery(
        table=table,
        predicate=UdfPredicate(udf),
        alpha=alpha,
        beta=beta,
        rho=0.8,
        correlated_column="A",
    )


def _gated_udf(gate):
    def func(row):
        gate.wait(timeout=30)
        return bool(row["f"])

    return UserDefinedFunction("gated", func)


class TestCoalescing:
    def test_followers_share_leader_result_bitwise(self):
        gate = threading.Event()
        udf = _gated_udf(gate)
        catalog, _ = _setup(udf=udf)
        service = QueryService(Engine(catalog))
        query = _query(udf)

        async def scenario():
            leader = asyncio.create_task(service.submit_async(query, seed=5))
            while not service._async_flights:
                await asyncio.sleep(0.005)
            followers = [
                asyncio.create_task(service.submit_async(query, seed=5))
                for _ in range(3)
            ]
            await asyncio.sleep(0.05)  # let followers reach the flight await
            gate.set()
            return await asyncio.gather(leader, *followers)

        results = asyncio.run(scenario())
        reference = np.asarray(results[0].row_ids)
        for result in results[1:]:
            assert np.array_equal(reference, np.asarray(result.row_ids))
            assert result.metadata.get("coalesced") is True
            assert result.ledger is results[0].ledger  # work done exactly once
        metrics = service.metrics()
        # One cold pipeline, one submitted query: followers charged nothing.
        assert metrics["queries"] == 1
        assert metrics["pipeline_runs"] == 1
        assert metrics["coalesced"] == 3
        assert "coalesced" in service.latency_snapshot()

    def test_different_seed_follower_resubmits_warm(self):
        gate = threading.Event()
        udf = _gated_udf(gate)
        catalog, _ = _setup(udf=udf, name="btab")
        service = QueryService(Engine(catalog))
        query = _query(udf, table="btab")

        async def scenario():
            leader = asyncio.create_task(service.submit_async(query, seed=5))
            while not service._async_flights:
                await asyncio.sleep(0.005)
            follower = asyncio.create_task(service.submit_async(query, seed=6))
            await asyncio.sleep(0.05)
            gate.set()
            return await asyncio.gather(leader, follower)

        leader_result, follower_result = asyncio.run(scenario())
        assert leader_result.metadata["plan_cache"] == "miss"
        assert "coalesced" not in follower_result.metadata
        assert follower_result.metadata["plan_cache"] == "hit"
        metrics = service.metrics()
        assert metrics["queries"] == 2
        assert metrics["pipeline_runs"] == 1
        assert metrics["coalesced"] == 0

    def test_warm_requests_do_not_coalesce(self):
        catalog, udf = _setup(name="ctab")
        service = QueryService(Engine(catalog))
        query = _query(udf, table="ctab")
        service.submit(query, seed=1)  # warm the plan

        async def scenario():
            return await asyncio.gather(
                service.submit_async(query, seed=2),
                service.submit_async(query, seed=2),
            )

        first, second = asyncio.run(scenario())
        assert service.metrics()["coalesced"] == 0
        assert np.array_equal(np.asarray(first.row_ids), np.asarray(second.row_ids))


class TestLoadShedding:
    def test_overloaded_is_typed_counted_and_never_silent(self):
        registry = enable_metrics(MetricsRegistry())
        try:
            gate = threading.Event()
            udf = _gated_udf(gate)
            catalog, _ = _setup(udf=udf, name="dtab")
            service = QueryService(
                Engine(catalog),
                config=ServiceConfig(
                    max_concurrency=1, class_limits={"approximate": 1}
                ),
            )
            query = _query(udf, table="dtab")

            async def scenario():
                leader = asyncio.create_task(service.submit_async(query, seed=5))
                while not service._async_flights:
                    await asyncio.sleep(0.005)
                shed = await asyncio.gather(
                    *[service.submit_async(query, seed=5) for _ in range(5)],
                    return_exceptions=True,
                )
                gate.set()
                return await leader, shed

            leader_result, shed = asyncio.run(scenario())
            assert leader_result.ledger.evaluated_count > 0
            assert len(shed) == 5
            for exc in shed:
                assert isinstance(exc, Overloaded)  # typed, never silently dropped
                assert exc.query_class == "approximate"
                assert exc.limit == 1
                assert exc.pending >= 1
            metrics = service.metrics()
            # Accounting delta is exactly zero: every raise is counted once.
            assert metrics["shed"] == 5
            counters = registry.snapshot()["counters"]
            assert counters.get("repro_serving_shed_total") == 5.0
            # Shed requests never executed: one query, one pipeline run.
            assert metrics["queries"] == 1
        finally:
            disable_metrics()

    def test_pending_drains_after_completion(self):
        catalog, udf = _setup(name="etab")
        service = QueryService(
            Engine(catalog), config=ServiceConfig(max_pending=2)
        )
        query = _query(udf, table="etab")
        asyncio.run(service.submit_async(query, seed=1))
        assert service.stats().frontend["pending"].get("approximate", 0) == 0


class TestConfigShims:
    def test_legacy_kwargs_warn_and_map(self):
        catalog, _ = _setup(name="ftab")
        with pytest.warns(DeprecationWarning, match="now spelled 'thread'"):
            service = QueryService(Engine(catalog), executor="parallel", max_workers=3)
        assert service.executor_backend == "thread"
        assert service.config.max_workers == 3

        with pytest.warns(DeprecationWarning):
            service = QueryService(Engine(catalog), executor="batch")
        assert service.executor_backend == "serial"

        with pytest.warns(DeprecationWarning):
            service = QueryService(Engine(catalog), executor="serial")
        assert service.executor_backend == "reference"

        with pytest.warns(DeprecationWarning):
            service = QueryService(Engine(catalog), plan_cache_size=0, ttl=5.0)
        assert service.config.plan_cache_size == 0
        assert service.config.ttl == 5.0

    def test_config_plus_legacy_kwarg_is_an_error(self):
        catalog, _ = _setup(name="gtab")
        with pytest.raises(ValueError, match="not both"):
            QueryService(Engine(catalog), config=ServiceConfig(), executor="batch")

    def test_service_config_rejects_legacy_names(self):
        with pytest.raises(ValueError, match="pre-1.3 name"):
            ServiceConfig(executor="parallel")
        with pytest.raises(ValueError, match="must be one of"):
            ServiceConfig(executor="bogus")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_pending=0)
        with pytest.raises(ValueError):
            ServiceConfig(class_limits={"exact": -1})


class TestStatsSurface:
    def test_stats_shape_matches_schema(self):
        catalog, udf = _setup(name="htab")
        service = QueryService(Engine(catalog))
        service.submit(_query(udf, table="htab"), seed=0)
        stats = service.stats()
        assert isinstance(stats, ServiceStats)
        assert set(stats.to_dict()) == set(SERVICE_STATS_SCHEMA)
        assert stats.serving["queries"] == 1
        assert "shed" in stats.serving and "coalesced" in stats.serving
        assert stats.frontend["max_pending"] == service.config.max_pending
        assert "all" in stats.latency_ms

    def test_legacy_aliases_report_the_same_data(self):
        catalog, udf = _setup(name="itab")
        service = QueryService(Engine(catalog))
        service.submit(_query(udf, table="itab"), seed=0)
        stats = service.stats()
        metrics = service.metrics()
        snapshot = service.metrics_snapshot()
        # metrics() = counters + the two cache snapshots, exactly as before.
        for key, value in stats.serving.items():
            assert metrics[key] == value
        assert metrics["plan_cache"] == stats.plan_cache
        assert metrics["stats_cache"] == stats.stats_cache
        assert set(snapshot) == {"serving", "latency_ms", "registry"}
        assert snapshot["latency_ms"].keys() == stats.latency_ms.keys()


class TestExecutorAwareValidation:
    def test_non_aware_strategy_rejected_for_parallel_backends(self):
        catalog, _ = _setup(name="jtab")

        class Opaque:
            def __init__(self, random_state):
                pass

        for backend in ("thread", "process"):
            with pytest.raises(TypeError, match="ExecutorAware"):
                QueryService(
                    Engine(catalog),
                    strategy_factory=Opaque,
                    config=ServiceConfig(executor=backend),
                )
        # Serial backends never inject an executor, so anything goes.
        QueryService(
            Engine(catalog),
            strategy_factory=Opaque,
            config=ServiceConfig(executor="serial"),
        )

    def test_default_strategy_is_executor_aware(self):
        catalog, _ = _setup(name="ktab")
        service = QueryService(
            Engine(catalog), config=ServiceConfig(executor="thread", max_workers=2)
        )
        assert isinstance(service._strategy_prototype, ExecutorAware)
