"""Tests for feature encoding and score bucketing."""

import numpy as np
import pytest

from repro.db.column import ColumnType
from repro.db.table import Table
from repro.ml.bucketer import ScoreBucketer
from repro.ml.features import FeatureEncoder, standardize


@pytest.fixture
def feature_table():
    return Table.from_columns(
        name="features",
        columns={
            "record_id": [f"r{i}" for i in range(8)],
            "income": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0],
            "grade": ["A", "A", "B", "B", "C", "C", "C", "A"],
            "huge_card": [f"u{i}" for i in range(8)],
            "label": [True, True, False, False, True, False, True, False],
        },
        column_types={
            "record_id": ColumnType.TEXT,
            "income": ColumnType.NUMERIC,
            "grade": ColumnType.CATEGORICAL,
            "huge_card": ColumnType.CATEGORICAL,
            "label": ColumnType.BOOLEAN,
        },
        hidden_columns=("label",),
    )


class TestStandardize:
    def test_zero_mean_unit_variance(self):
        matrix = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        standardized, means, stds = standardize(matrix)
        assert np.allclose(standardized.mean(axis=0), 0.0)
        assert np.allclose(standardized.std(axis=0), 1.0)

    def test_constant_column_handled(self):
        matrix = np.array([[1.0], [1.0], [1.0]])
        standardized, _, _ = standardize(matrix)
        assert np.allclose(standardized, 0.0)


class TestFeatureEncoder:
    def test_numeric_and_categorical_encoded(self, feature_table):
        encoder = FeatureEncoder(exclude_columns=("record_id",))
        matrix = encoder.fit_transform(feature_table)
        # income + 3 one-hot grade levels (huge_card excluded by cardinality cap
        # only if the cap is below 8; the default 50 keeps it, so tighten it).
        assert matrix.shape[0] == 8
        assert "income" in encoder.feature_names

    def test_cardinality_cap_excludes_wide_columns(self, feature_table):
        encoder = FeatureEncoder(max_categorical_cardinality=5, exclude_columns=("record_id",))
        encoder.fit(feature_table)
        assert all(not name.startswith("huge_card") for name in encoder.feature_names)

    def test_hidden_columns_never_used(self, feature_table):
        encoder = FeatureEncoder(exclude_columns=("record_id",))
        encoder.fit(feature_table)
        assert all("label" not in name for name in encoder.feature_names)

    def test_excluded_columns_respected(self, feature_table):
        encoder = FeatureEncoder(exclude_columns=("record_id", "grade"))
        encoder.fit(feature_table)
        assert all(not name.startswith("grade") for name in encoder.feature_names)

    def test_transform_subset_of_rows(self, feature_table):
        encoder = FeatureEncoder(max_categorical_cardinality=5, exclude_columns=("record_id",))
        encoder.fit(feature_table)
        matrix = encoder.transform(feature_table, row_ids=[0, 7])
        assert matrix.shape[0] == 2

    def test_transform_before_fit_raises(self, feature_table):
        with pytest.raises(RuntimeError):
            FeatureEncoder().transform(feature_table)

    def test_no_usable_columns_raises(self):
        table = Table.from_columns(
            "empty_features",
            columns={"only_id": [f"x{i}" for i in range(60)]},
            column_types={"only_id": ColumnType.CATEGORICAL},
        )
        with pytest.raises(ValueError):
            FeatureEncoder().fit(table)

    def test_num_features_matches_names(self, feature_table):
        encoder = FeatureEncoder(max_categorical_cardinality=5, exclude_columns=("record_id",))
        encoder.fit(feature_table)
        assert encoder.num_features == len(encoder.feature_names)


class TestScoreBucketer:
    def test_equal_frequency_buckets(self):
        scores = np.linspace(0.0, 1.0, 100)
        bucketer = ScoreBucketer(num_buckets=10)
        buckets = bucketer.fit_transform(scores)
        counts = np.bincount(buckets, minlength=10)
        assert counts.min() >= 9 and counts.max() <= 11

    def test_monotone_in_score(self):
        scores = [0.1, 0.9, 0.5, 0.3]
        bucketer = ScoreBucketer(num_buckets=4).fit(scores)
        buckets = bucketer.transform(scores)
        assert buckets[1] >= buckets[2] >= buckets[0]

    def test_single_bucket(self):
        bucketer = ScoreBucketer(num_buckets=1)
        assert set(bucketer.fit_transform([0.1, 0.5, 0.9])) == {0}

    def test_skewed_scores_collapse_buckets(self):
        scores = [0.5] * 50 + [0.9]
        bucketer = ScoreBucketer(num_buckets=10)
        buckets = bucketer.fit_transform(scores)
        assert bucketer.effective_num_buckets(scores) < 10
        assert max(buckets) <= 9

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ScoreBucketer().transform([0.5])

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            ScoreBucketer().fit([])

    def test_invalid_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            ScoreBucketer(num_buckets=0)

    def test_boundaries_length(self):
        bucketer = ScoreBucketer(num_buckets=4).fit(np.linspace(0, 1, 50))
        assert len(bucketer.boundaries) == 3
