"""Tests for the self-training classifier and multiple imputer."""

import numpy as np
import pytest

from repro.ml.imputation import MultipleImputer
from repro.ml.semi_supervised import SelfTrainingClassifier


def make_data(n_labeled=60, n_unlabeled=300, seed=0):
    rng = np.random.default_rng(seed)
    def gen(n):
        x = rng.normal(size=(n, 2))
        y = (x[:, 0] - 0.3 * x[:, 1] > 0).astype(int)
        return x, y
    x_l, y_l = gen(n_labeled)
    x_u, y_u = gen(n_unlabeled)
    return x_l, y_l, x_u, y_u


class TestSelfTraining:
    def test_predicts_unlabeled_data_well(self):
        x_l, y_l, x_u, y_u = make_data()
        model = SelfTrainingClassifier(random_state=0).fit(x_l, y_l, x_u)
        accuracy = (model.predict(x_u) == y_u).mean()
        assert accuracy > 0.85

    def test_runs_multiple_rounds(self):
        x_l, y_l, x_u, _ = make_data()
        model = SelfTrainingClassifier(max_rounds=4, random_state=0).fit(x_l, y_l, x_u)
        assert 1 <= model.rounds_run_ <= 4

    def test_empty_unlabeled_pool(self):
        x_l, y_l, _, _ = make_data(n_unlabeled=0)
        model = SelfTrainingClassifier(random_state=0).fit(x_l, y_l, np.zeros((0, 2)))
        assert model.predict(x_l).shape == y_l.shape

    def test_probabilities_in_unit_interval(self):
        x_l, y_l, x_u, _ = make_data()
        model = SelfTrainingClassifier(random_state=0).fit(x_l, y_l, x_u)
        probabilities = model.predict_proba(x_u)
        assert probabilities.min() >= 0.0 and probabilities.max() <= 1.0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SelfTrainingClassifier(confidence_threshold=0.3)

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            SelfTrainingClassifier().fit(np.zeros((5, 2)), [1, 0], np.zeros((3, 2)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SelfTrainingClassifier().predict(np.zeros((2, 2)))


class TestMultipleImputer:
    def test_majority_vote_tracks_labels(self):
        x_l, y_l, x_u, y_u = make_data()
        imputer = MultipleImputer(num_imputations=7, random_state=1)
        summary = imputer.fit_impute(x_l, y_l, x_u)
        agreement = (summary.majority_positive == (y_u == 1)).mean()
        assert agreement > 0.8

    def test_inclusion_probabilities_in_unit_interval(self):
        x_l, y_l, x_u, _ = make_data()
        summary = MultipleImputer(random_state=1).fit_impute(x_l, y_l, x_u)
        assert summary.inclusion_probability.min() >= 0.0
        assert summary.inclusion_probability.max() <= 1.0

    def test_positive_indices_subset(self):
        x_l, y_l, x_u, _ = make_data()
        summary = MultipleImputer(random_state=1).fit_impute(x_l, y_l, x_u)
        indices = summary.positive_indices()
        assert all(0 <= i < x_u.shape[0] for i in indices)

    def test_empty_unlabeled_pool(self):
        x_l, y_l, _, _ = make_data()
        summary = MultipleImputer(random_state=1).fit_impute(x_l, y_l, np.zeros((0, 2)))
        assert summary.positive_indices() == []

    def test_rejects_zero_imputations(self):
        with pytest.raises(ValueError):
            MultipleImputer(num_imputations=0)
