"""Tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression


def make_separable(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
    return x, y


def make_noisy(n=600, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    logits = 1.5 * x[:, 0] - 1.0 * x[:, 1]
    probabilities = 1.0 / (1.0 + np.exp(-logits))
    y = (rng.random(n) < probabilities).astype(int)
    return x, y


class TestFitting:
    def test_learns_separable_data(self):
        x, y = make_separable()
        model = LogisticRegression().fit(x, y)
        assert model.accuracy(x, y) > 0.95

    def test_learns_noisy_data_reasonably(self):
        x, y = make_noisy()
        model = LogisticRegression().fit(x, y)
        # The generating process is noisy (Bayes accuracy ~0.78), so only a
        # modest accuracy is achievable.
        assert model.accuracy(x, y) > 0.70

    def test_probabilities_in_unit_interval(self):
        x, y = make_noisy()
        model = LogisticRegression().fit(x, y)
        probabilities = model.predict_proba(x)
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= 1.0

    def test_probabilities_track_labels(self):
        x, y = make_separable()
        model = LogisticRegression().fit(x, y)
        probabilities = model.predict_proba(x)
        assert probabilities[y == 1].mean() > probabilities[y == 0].mean()

    def test_single_class_training_set(self):
        x = np.random.default_rng(0).normal(size=(30, 2))
        y = np.ones(30, dtype=int)
        model = LogisticRegression().fit(x, y)
        assert model.predict_proba(x).mean() > 0.9

    def test_regularization_shrinks_weights(self):
        x, y = make_separable()
        weak = LogisticRegression(l2_penalty=1e-4).fit(x, y)
        strong = LogisticRegression(l2_penalty=10.0).fit(x, y)
        assert np.linalg.norm(strong.weights) < np.linalg.norm(weak.weights)

    def test_loss_decreases_from_origin(self):
        x, y = make_noisy()
        model = LogisticRegression()
        model.fit(x, y)
        origin_loss = model._loss(x, y.astype(float), np.zeros(x.shape[1]), 0.0)
        fitted_loss = model._loss(x, y.astype(float), model.weights, model.intercept)
        assert fitted_loss <= origin_loss + 1e-12


class TestValidation:
    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((10, 2)), np.zeros(5))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), [0, 1, 2])

    def test_rejects_empty_training_set(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((0, 2)), [])

    def test_rejects_one_dimensional_features(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros(10), np.zeros(10))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((1, 2)))

    def test_predict_with_wrong_width_raises(self):
        x, y = make_separable(50)
        model = LogisticRegression().fit(x, y)
        with pytest.raises(ValueError):
            model.predict_proba(np.zeros((2, 5)))

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2_penalty=-1.0)


class TestInference:
    def test_predict_threshold(self):
        x, y = make_separable()
        model = LogisticRegression().fit(x, y)
        strict = model.predict(x, threshold=0.9).sum()
        lenient = model.predict(x, threshold=0.1).sum()
        assert strict <= lenient

    def test_decision_function_sign_matches_prediction(self):
        x, y = make_separable()
        model = LogisticRegression().fit(x, y)
        scores = model.decision_function(x)
        predictions = model.predict(x)
        assert np.array_equal(predictions, (scores >= 0).astype(int))
