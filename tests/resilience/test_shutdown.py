"""Graceful shutdown: drain, typed rejection, deterministic teardown."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.sharding import ShardedTable
from repro.db.shm import exported_segment_count
from repro.db.table import Table
from repro.db.udf import UserDefinedFunction
from repro.serving import QueryService, ServiceClosed, ServiceConfig


def _columns(rows=600, groups=4, seed=17):
    rng = np.random.default_rng(seed)
    return {
        "A": [f"a{int(v)}" for v in rng.integers(0, groups, rows)],
        "f": [bool(v) for v in rng.random(rows) < 0.4],
    }


def _setup(name="ctab", udf=None, shards=None):
    columns = _columns()
    if shards:
        table = ShardedTable.from_columns(
            name, columns, hidden_columns=["f"], num_shards=shards
        )
    else:
        table = Table.from_columns(name, columns, hidden_columns=["f"])
    udf = udf or UserDefinedFunction.from_label_column(f"{name}_udf", "f")
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    return catalog, udf


def _query(udf, table):
    return SelectQuery(
        table=table,
        predicate=UdfPredicate(udf),
        alpha=0.7,
        beta=0.7,
        rho=0.8,
        correlated_column="A",
    )


def _gated_udf(gate, name="gated"):
    def func(row):
        gate.wait(timeout=30)
        return bool(row["f"])

    return UserDefinedFunction(name, func)


class TestClose:
    def test_close_rejects_new_requests_with_typed_error(self):
        catalog, udf = _setup(name="cl1")
        service = QueryService(Engine(catalog))
        service.submit(_query(udf, "cl1"), seed=1)  # works while open
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(_query(udf, "cl1"), seed=2)
        with pytest.raises(ServiceClosed):
            asyncio.run(service.submit_async(_query(udf, "cl1"), seed=3))
        assert service.stats().resilience["service_closed"] is True

    def test_close_is_idempotent(self):
        catalog, udf = _setup(name="cl2")
        service = QueryService(Engine(catalog))
        service.submit(_query(udf, "cl2"), seed=1)
        service.close()
        service.close()  # cheap no-op, no error
        assert service.stats().resilience["service_closed"] is True

    def test_context_manager_closes(self):
        catalog, udf = _setup(name="cl3")
        with QueryService(Engine(catalog)) as service:
            result = service.submit(_query(udf, "cl3"), seed=1)
            assert len(result.row_ids) >= 0
        with pytest.raises(ServiceClosed):
            service.submit(_query(udf, "cl3"), seed=2)

    def test_close_drains_inflight_requests(self):
        """close() waits for executing requests; new arrivals are rejected
        the moment close begins; the drained request completes normally."""
        gate = threading.Event()
        udf = _gated_udf(gate, name="dr_udf")
        catalog, _ = _setup(name="cl4", udf=udf)
        service = QueryService(Engine(catalog))
        results = []

        def leader():
            results.append(service.submit(_query(udf, "cl4"), seed=1))

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        deadline = time.time() + 10
        while service._inflight == 0 and time.time() < deadline:
            time.sleep(0.005)
        assert service._inflight == 1

        closed = threading.Event()

        def closer():
            service.close()
            closed.set()

        closer_thread = threading.Thread(target=closer)
        closer_thread.start()
        time.sleep(0.05)
        assert not closed.is_set()  # still draining the in-flight request
        with pytest.raises(ServiceClosed):
            service.submit(_query(udf, "cl4"), seed=2)

        gate.set()
        leader_thread.join(timeout=30)
        closer_thread.join(timeout=30)
        assert closed.is_set()
        assert results, "the drained request must complete with its result"

    def test_close_with_timeout_returns_even_if_not_drained(self):
        gate = threading.Event()
        udf = _gated_udf(gate, name="to_udf")
        catalog, _ = _setup(name="cl5", udf=udf)
        service = QueryService(Engine(catalog))
        thread = threading.Thread(
            target=lambda: self._swallow(service, _query(udf, "cl5"))
        )
        thread.start()
        deadline = time.time() + 10
        while service._inflight == 0 and time.time() < deadline:
            time.sleep(0.005)
        started = time.perf_counter()
        service.close(timeout=0.2)  # request still gated: returns anyway
        assert time.perf_counter() - started < 5.0
        gate.set()
        thread.join(timeout=30)

    @staticmethod
    def _swallow(service, query):
        try:
            service.submit(query, seed=1)
        except Exception:
            pass

    def test_process_backend_close_releases_all_segments(self):
        catalog, udf = _setup(name="cl6", shards=3)
        service = QueryService(
            Engine(catalog), config=ServiceConfig(executor="process", max_workers=2)
        )
        service.submit(_query(udf, "cl6"), seed=1)
        service.close()
        assert exported_segment_count() == 0
        assert service.stats().resilience["service_closed"] is True


class TestServiceClosedType:
    def test_is_a_database_error_with_guidance(self):
        from repro.db.errors import DatabaseError

        err = ServiceClosed()
        assert isinstance(err, DatabaseError)
        assert "closed" in str(err)
