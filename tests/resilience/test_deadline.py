"""Deadlines: mechanics, cooperative cancellation, and serving integration.

The accounting invariant under test: once a request's deadline expires, the
typed :class:`DeadlineExceeded` surfaces at the next cooperative check and
**no further UDF work is charged** — and a deadline that never fires changes
nothing (bitwise parity with an undeadlined run).
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core.executor import BatchExecutor
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.serving import QueryService, ServiceConfig


def _table(n=300, groups=4, seed=9, name="dtab"):
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        name,
        {
            "A": [f"a{int(v)}" for v in rng.integers(0, groups, n)],
            "f": [bool(v) for v in rng.random(n) < 0.4],
        },
        hidden_columns=["f"],
    )


def _setup(udf=None, name="dtab"):
    catalog = Catalog()
    catalog.register_table(_table(name=name))
    udf = udf or UserDefinedFunction.from_label_column("dudf", "f")
    catalog.register_udf(udf)
    return catalog, udf


def _query(udf, table="dtab"):
    return SelectQuery(
        table=table,
        predicate=UdfPredicate(udf),
        alpha=0.7,
        beta=0.7,
        rho=0.8,
        correlated_column="A",
    )


def _slow_udf(name="slow", per_row_s=0.002):
    def func(row):
        time.sleep(per_row_s)
        return bool(row["f"])

    return UserDefinedFunction(name, func)


def _gated_udf(gate, name="gated"):
    def func(row):
        gate.wait(timeout=30)
        return bool(row["f"])

    return UserDefinedFunction(name, func)


class TestDeadlineMechanics:
    def test_fake_clock_expiry(self):
        now = [0.0]
        deadline = Deadline.after(5.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired()
        deadline.check("here")  # no raise
        now[0] = 5.0
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("here")
        assert err.value.timeout_s == 5.0
        assert err.value.where == "here"

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_scope_activates_and_restores(self):
        assert current_deadline() is None
        check_deadline("outside")  # no active deadline: free no-op
        outer = Deadline.after(10.0)
        inner = Deadline.after(1.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None
        with deadline_scope(None):  # None accepted, no-op
            assert current_deadline() is None

    def test_scope_propagates_into_threads_via_context_copy(self):
        import contextvars

        deadline = Deadline.after(10.0)
        seen = []
        with deadline_scope(deadline):
            ctx = contextvars.copy_context()
        thread = threading.Thread(target=lambda: seen.append(ctx.run(current_deadline)))
        thread.start()
        thread.join()
        assert seen == [deadline]


class TestCooperativeCancellation:
    def test_expired_deadline_charges_nothing(self):
        """An executor entered with an already-expired deadline pays zero."""
        table = _table(name="xtab")
        udf = UserDefinedFunction.from_label_column("xudf", "f")
        index = table.group_index("A")
        plan = ExecutionPlan(
            decisions={
                value: GroupDecision(retrieve=1.0, evaluate=1.0)
                for value in index.values
            }
        )
        ledger = CostLedger()
        expired = Deadline(expires_at=0.0, timeout_s=1.0, clock=lambda: 1.0)
        executor = BatchExecutor(random_state=3)
        with deadline_scope(expired):
            with pytest.raises(DeadlineExceeded):
                executor.execute(table, index, udf, plan, ledger)
        assert ledger.retrieved_count == 0
        assert ledger.evaluated_count == 0
        assert udf.counter_snapshot()["cache_misses"] == 0

    def test_generous_deadline_is_bitwise_invisible(self):
        """Same seed, with and without a (non-firing) deadline: same answer."""
        udf_a = UserDefinedFunction.from_label_column("ga", "f")
        udf_b = UserDefinedFunction.from_label_column("gb", "f")
        catalog_a, _ = _setup(udf=udf_a, name="gtab")
        catalog_b, _ = _setup(udf=udf_b, name="gtab")
        plain = QueryService(Engine(catalog_a)).submit(
            _query(udf_a, table="gtab"), seed=11
        )
        bounded = QueryService(Engine(catalog_b)).submit(
            _query(udf_b, table="gtab"), seed=11, timeout_s=60.0
        )
        assert np.array_equal(np.asarray(plain.row_ids), np.asarray(bounded.row_ids))
        assert bounded.ledger.total_cost == plain.ledger.total_cost


class TestServiceDeadlines:
    def test_default_timeout_cancels_slow_query(self):
        udf = _slow_udf("sv_slow")
        catalog, _ = _setup(udf=udf, name="svtab")
        service = QueryService(
            Engine(catalog), config=ServiceConfig(default_timeout_s=0.05)
        )
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            service.submit(_query(udf, table="svtab"), seed=1)
        assert time.perf_counter() - started < 5.0  # deadline + grace, not a hang
        assert service.metrics()["deadline_exceeded"] == 1
        assert "error" in service.latency_snapshot()

    def test_per_submit_timeout_overrides(self):
        udf = _slow_udf("ov_slow")
        catalog, _ = _setup(udf=udf, name="ovtab")
        service = QueryService(Engine(catalog))  # no default deadline
        with pytest.raises(DeadlineExceeded):
            service.submit(_query(udf, table="ovtab"), seed=1, timeout_s=0.05)
        assert service.metrics()["deadline_exceeded"] == 1

    def test_flight_wait_respects_deadline(self):
        """A request parked behind a flight leader raises, never hangs."""
        gate = threading.Event()
        udf = _gated_udf(gate, name="fw_gated")
        catalog, _ = _setup(udf=udf, name="fwtab")
        service = QueryService(Engine(catalog))
        query = _query(udf, table="fwtab")

        errors = []
        leader_results = []

        def leader():
            leader_results.append(service.submit(query, seed=5))

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        # Wait for the leader to hold the single-flight lock (it is inside
        # the gated UDF by the time flight bookkeeping appears).
        deadline = time.time() + 10
        while not any(service._flight_locks) and time.time() < deadline:
            time.sleep(0.005)

        def follower():
            try:
                service.submit(query, seed=6, timeout_s=0.2)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        follower_thread.join(timeout=10)
        assert not follower_thread.is_alive(), "follower hung past its deadline"
        gate.set()
        leader_thread.join(timeout=30)
        assert leader_results, "leader should finish once the gate opens"
        assert len(errors) == 1 and isinstance(errors[0], DeadlineExceeded)
        metrics = service.metrics()
        assert metrics["flight_waits"] >= 1
        assert metrics["deadline_exceeded"] == 1

    def test_async_follower_inherits_leaders_typed_error(self):
        """A timed-out leader's DeadlineExceeded is shared, not re-run."""
        udf = _slow_udf("as_slow", per_row_s=0.005)
        catalog, _ = _setup(udf=udf, name="astab")
        service = QueryService(Engine(catalog))
        query = _query(udf, table="astab")

        async def scenario():
            leader = asyncio.create_task(
                service.submit_async(query, seed=5, timeout_s=0.1)
            )
            while not service._async_flights:
                await asyncio.sleep(0.005)
            follower = asyncio.create_task(
                service.submit_async(query, seed=5, timeout_s=30.0)
            )
            return await asyncio.gather(leader, follower, return_exceptions=True)

        leader_err, follower_err = asyncio.run(scenario())
        assert isinstance(leader_err, DeadlineExceeded)
        assert isinstance(follower_err, DeadlineExceeded)
        assert service.metrics()["deadline_exceeded"] >= 2

    def test_async_follower_own_deadline_while_parked(self):
        """A follower whose own deadline fires mid-wait raises promptly."""
        gate = threading.Event()
        udf = _gated_udf(gate, name="af_gated")
        catalog, _ = _setup(udf=udf, name="aftab")
        service = QueryService(Engine(catalog))
        query = _query(udf, table="aftab")

        async def scenario():
            leader = asyncio.create_task(service.submit_async(query, seed=5))
            while not service._async_flights:
                await asyncio.sleep(0.005)
            started = time.perf_counter()
            try:
                await service.submit_async(query, seed=5, timeout_s=0.1)
                raise AssertionError("follower should have timed out")
            except DeadlineExceeded:
                waited = time.perf_counter() - started
            gate.set()
            await leader
            return waited

        waited = asyncio.run(scenario())
        assert waited < 5.0
        assert service.metrics()["deadline_exceeded"] >= 1
