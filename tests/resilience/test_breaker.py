"""Circuit breaker: state machine, probe accounting, service degradation.

The serving-side contract: an open breaker degrades ``"process"`` requests
to the in-process thread executor — bitwise-identical answers, observable
as ``metadata["degraded"] == "breaker_open"``, the ``degraded`` counter,
and ``stats().resilience``.
"""

import numpy as np
import pytest

from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.sharding import ShardedTable
from repro.db.table import Table
from repro.db.udf import UserDefinedFunction
from repro.obs.metrics import MetricsRegistry, disable_metrics, enable_metrics
from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving import QueryService, ServiceConfig


@pytest.fixture(autouse=True)
def _restore_null_registry():
    yield
    disable_metrics()


def _columns(rows=600, groups=4, seed=13):
    rng = np.random.default_rng(seed)
    return {
        "A": [f"a{int(v)}" for v in rng.integers(0, groups, rows)],
        "f": [bool(v) for v in rng.random(rows) < 0.4],
    }


def _setup(name="btab", shards=None):
    columns = _columns()
    if shards:
        table = ShardedTable.from_columns(
            name, columns, hidden_columns=["f"], num_shards=shards
        )
    else:
        table = Table.from_columns(name, columns, hidden_columns=["f"])
    udf = UserDefinedFunction.from_label_column(f"{name}_udf", "f")
    catalog = Catalog()
    catalog.register_table(table)
    catalog.register_udf(udf)
    return catalog, udf


def _query(udf, table):
    return SelectQuery(
        table=table,
        predicate=UdfPredicate(udf),
        alpha=0.7,
        beta=0.7,
        rho=0.8,
        correlated_column="A",
    )


class TestStateMachine:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, recovery_time_s=10.0)
        assert breaker.state == CLOSED
        breaker.record_failure("worker_crash")
        breaker.record_failure("worker_crash")
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure("worker_crash")
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_time_s=10.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken by the success

    def test_half_open_probe_then_close(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time_s=5.0, clock=lambda: now[0]
        )
        breaker.record_failure("shm_export")
        assert not breaker.allow()
        now[0] = 5.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # quota of one: everyone else waits
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time_s=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 5.0
        assert breaker.allow()
        breaker.record_failure("worker_hang")
        assert breaker.state == OPEN
        assert not breaker.allow()  # the re-open restarted the clock
        now[0] = 10.0
        assert breaker.state == HALF_OPEN

    def test_cancel_probe_releases_the_slot(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time_s=1.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()
        breaker.cancel_probe()  # fell back before exercising the pool
        assert breaker.allow()  # slot available again
        assert breaker.state == HALF_OPEN

    def test_snapshot_and_retry_accounting(self):
        breaker = CircuitBreaker(failure_threshold=2, recovery_time_s=9.0)
        breaker.record_failure("garbage")
        breaker.record_success()
        breaker.record_retry(3)
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["failures_total"] == 1
        assert snap["successes_total"] == 1
        assert snap["retried_spans"] == 3
        assert snap["opened_count"] == 0
        assert snap["last_failure_reason"] == "garbage"
        assert snap["failure_threshold"] == 2
        assert breaker.retries_total == 3

    def test_transitions_counted_on_the_registry(self):
        registry = enable_metrics(MetricsRegistry())
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_time_s=1.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] = 1.0
        assert breaker.allow()
        breaker.record_success()
        counters = registry.snapshot()["counters"]
        for state in (OPEN, HALF_OPEN, CLOSED):
            assert any(
                "repro_breaker_transitions_total" in key and f'to="{state}"' in key
                for key in counters
            ), f"missing transition to {state}"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_quota=0)


class TestServiceDegradation:
    def test_open_breaker_degrades_to_thread_with_identical_answer(self):
        catalog, udf = _setup(name="dgtab", shards=3)
        service = QueryService(
            Engine(catalog),
            config=ServiceConfig(
                executor="process", max_workers=2, breaker_recovery_s=600.0
            ),
        )
        baseline_catalog, baseline_udf = _setup(name="dgtab", shards=3)
        baseline = QueryService(
            Engine(baseline_catalog), config=ServiceConfig(executor="thread")
        )

        for _ in range(service.config.breaker_threshold):
            service.breaker.record_failure("worker_crash")
        assert service.breaker.state == OPEN

        result = service.submit(_query(udf, "dgtab"), seed=21)
        expected = baseline.submit(_query(baseline_udf, "dgtab"), seed=21)
        assert np.array_equal(
            np.asarray(result.row_ids), np.asarray(expected.row_ids)
        )
        assert result.metadata["degraded"] == "breaker_open"

        stats = service.stats()
        assert stats.serving["degraded"] == 1
        assert stats.resilience["state"] == OPEN
        assert stats.resilience["service_closed"] is False
        assert stats.serving["retried_spans"] == 0
        assert service.metrics()["degraded"] == 1

    def test_healthy_breaker_marks_nothing(self):
        catalog, udf = _setup(name="hbtab")
        service = QueryService(Engine(catalog))
        result = service.submit(_query(udf, "hbtab"), seed=3)
        assert "degraded" not in result.metadata
        stats = service.stats()
        assert stats.serving["degraded"] == 0
        assert stats.resilience["state"] == CLOSED
