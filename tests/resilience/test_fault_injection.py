"""Deterministic fault injection: every failure is survived or typed.

The differential contract (ISSUE 8 acceptance): under any injected fault —
worker crash, hang, garbage result, shared-memory export/attach error, slow
UDF — a query returns the **bitwise-serial** answer (row ids, ledger
charges, UDF counters, memo content) or a typed error within deadline +
grace.  Retried spans double-charge nothing, and no run leaks a
shared-memory segment (the conftest fixture asserts that after every test).

Selected by the CI ``chaos`` step via ``-k fault`` (the module name).
"""

import pickle
import time

import numpy as np
import pytest

from repro.core.parallel import ParallelBatchExecutor
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.core.procpool import ProcessPoolBatchExecutor
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import UdfPredicate
from repro.db.query import SelectQuery
from repro.db.sharding import ShardedTable
from repro.db.shm import exported_segment_count
from repro.db.table import Table
from repro.db.udf import CostLedger, RevealLabel, UserDefinedFunction
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    InjectedFault,
    deadline_scope,
    fault_scope,
    maybe_fire,
)
from repro.serving import QueryService, ServiceConfig

WORKERS = 2


def _table(n=600, groups=5, seed=11, name="ftab"):
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        name,
        {
            "A": [f"a{int(v)}" for v in rng.integers(0, groups, n)],
            "f": [bool(v) for v in rng.random(n) < 0.45],
        },
        hidden_columns=["f"],
    )


def _sharded(n=600, shards=4, seed=11, name="ftab"):
    return ShardedTable.from_table(_table(n=n, seed=seed, name=name), num_shards=shards)


def _label_udf(name="fudf"):
    return UserDefinedFunction.from_label_column(name, "f")


def _func_udf(name="fyudf"):
    return UserDefinedFunction(name, RevealLabel("f", True))


def _mixed_plan(index):
    regimes = [(0.0, 0.0), (1.0, 1.0), (0.6, 0.0), (1.0, 0.5), (0.7, 0.8)]
    decisions = {}
    for code, value in enumerate(index.values):
        retrieve, evaluate = regimes[code % len(regimes)]
        decisions[value] = GroupDecision(retrieve=retrieve, evaluate=retrieve * evaluate)
    return ExecutionPlan(decisions=decisions)


def _run(table, executor, udf, ledger=None):
    index = table.group_index("A")
    plan = _mixed_plan(index)
    ledger = ledger if ledger is not None else CostLedger()
    result = executor.execute(table, index, udf, plan, ledger)
    return result, ledger


def _serial_baseline(table, udf, seed=7):
    executor = ParallelBatchExecutor(random_state=seed, max_workers=1)
    return _run(table, executor, udf)


def _assert_parity(serial, serial_ledger, serial_udf, remote, remote_ledger, remote_udf):
    assert np.array_equal(
        np.asarray(serial.returned_row_ids), np.asarray(remote.returned_row_ids)
    )
    assert remote_ledger.retrieved_count == serial_ledger.retrieved_count
    assert remote_ledger.evaluated_count == serial_ledger.evaluated_count
    assert remote_udf.counter_snapshot() == serial_udf.counter_snapshot()
    assert remote_udf._cache == serial_udf._cache
    for key, counts in serial.group_counts.items():
        other = remote.group_counts[key]
        assert (
            counts.retrieved, counts.evaluated, counts.returned,
            counts.evaluated_correct,
        ) == (
            other.retrieved, other.evaluated, other.returned,
            other.evaluated_correct,
        )


class TestFaultPlanDeterminism:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind="meltdown", probability=0.5)
        with pytest.raises(ValueError):
            FaultRule(kind="crash")  # neither selector
        with pytest.raises(ValueError):
            FaultRule(kind="crash", addresses=frozenset({(0,)}), probability=0.5)
        with pytest.raises(ValueError):
            FaultRule(kind="crash", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(kind="sleep", probability=0.5, sleep_s=-1.0)

    def test_probability_rules_fire_identically_across_instances(self):
        def fired_set(plan):
            return {
                addr
                for addr in range(50)
                if plan.should_fire("worker", addr, 0) is not None
            }

        rules = {"worker": FaultRule(kind="error", probability=0.3)}
        first = fired_set(FaultPlan(seed=99, rules=rules))
        second = fired_set(FaultPlan(seed=99, rules=rules))
        different = fired_set(FaultPlan(seed=100, rules=rules))
        assert first == second
        assert 0 < len(first) < 50  # the coin actually discriminates
        assert first != different

    def test_pickle_ships_schedule_not_process_state(self):
        plan = FaultPlan(
            seed=5, rules={"udf_eval": FaultRule(kind="error", probability=1.0)}
        )
        assert plan.next_address("udf_eval") == 0
        with pytest.raises(InjectedFault):
            maybe_fire(plan, "udf_eval")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == plan.seed
        assert clone.rules == dict(plan.rules)
        assert clone.fired() == []  # fresh per-process log
        assert clone.next_address("udf_eval") == 0  # fresh counters

    def test_injected_fault_survives_pickling(self):
        fault = InjectedFault("shm_attach", (3,))
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert clone.site == "shm_attach" and clone.address == (3,)

    def test_counter_addresses_are_per_site(self):
        plan = FaultPlan(
            seed=1,
            rules={
                "shm_export": FaultRule(kind="error", addresses=frozenset({(1,)}))
            },
        )
        # Sites without a rule never advance a counter (maybe_fire no-ops).
        assert maybe_fire(plan, "udf_eval") is None
        assert maybe_fire(plan, "shm_export") is None  # hit 0
        with pytest.raises(InjectedFault):
            maybe_fire(plan, "shm_export")  # hit 1 fires
        assert plan.fired() == [("shm_export", (1,), "error")]


class TestWorkerFaults:
    def test_crashed_span_is_retried_to_bitwise_parity(self):
        """One crash at (span 1, attempt 0): the retry round restores parity."""
        table = _sharded(name="crashtab")
        udf_serial, udf_remote = _label_udf("cr_a"), _label_udf("cr_b")
        serial, serial_ledger = _serial_baseline(table, udf_serial)
        plan = FaultPlan(
            seed=0,
            rules={"worker": FaultRule(kind="crash", addresses=frozenset({(1, 0)}))},
        )
        breaker = CircuitBreaker(failure_threshold=100)
        executor = ProcessPoolBatchExecutor(
            random_state=7, max_workers=WORKERS, breaker=breaker
        )
        with fault_scope(plan):
            remote, remote_ledger = _run(table, executor, udf_remote)
        _assert_parity(serial, serial_ledger, udf_serial, remote, remote_ledger, udf_remote)
        snap = breaker.snapshot()
        assert snap["retried_spans"] >= 1  # the crash really happened remotely
        assert snap["failures_total"] == 1  # one faulting round
        assert snap["successes_total"] == 1  # the clean retry resets the streak
        assert snap["consecutive_failures"] == 0

    def test_persistent_crash_recomputes_locally_with_exact_charges(self):
        """Every attempt crashes: give up on the pool, stay bitwise-serial."""
        table = _sharded(name="perstab")
        udf_serial, udf_remote = _label_udf("pc_a"), _label_udf("pc_b")
        serial, serial_ledger = _serial_baseline(table, udf_serial)
        plan = FaultPlan(
            seed=0, rules={"worker": FaultRule(kind="crash", probability=1.0)}
        )
        breaker = CircuitBreaker(failure_threshold=100)
        executor = ProcessPoolBatchExecutor(
            random_state=7, max_workers=WORKERS, breaker=breaker
        )
        with fault_scope(plan):
            remote, remote_ledger = _run(table, executor, udf_remote)
        _assert_parity(serial, serial_ledger, udf_serial, remote, remote_ledger, udf_remote)
        # Give-up path must have released the suspect exports immediately —
        # not waiting for teardown (the conftest fixture would mask that).
        assert exported_segment_count() == 0
        assert breaker.snapshot()["failures_total"] == 2  # both rounds faulted

    def test_retry_disabled_still_reaches_parity(self):
        table = _sharded(name="nortab")
        udf_serial, udf_remote = _label_udf("nr_a"), _label_udf("nr_b")
        serial, serial_ledger = _serial_baseline(table, udf_serial)
        plan = FaultPlan(
            seed=0,
            rules={"worker": FaultRule(kind="crash", addresses=frozenset({(0, 0)}))},
        )
        breaker = CircuitBreaker(failure_threshold=100)
        executor = ProcessPoolBatchExecutor(
            random_state=7, max_workers=WORKERS, breaker=breaker, retry_spans=False
        )
        with fault_scope(plan):
            remote, remote_ledger = _run(table, executor, udf_remote)
        _assert_parity(serial, serial_ledger, udf_serial, remote, remote_ledger, udf_remote)
        assert breaker.snapshot()["retried_spans"] == 0

    def test_garbage_result_rejected_and_retried(self):
        """A wrong-shaped worker result is discarded before any charge."""
        table = _sharded(name="garbtab")
        udf_serial, udf_remote = _label_udf("gb_a"), _label_udf("gb_b")
        serial, serial_ledger = _serial_baseline(table, udf_serial)
        plan = FaultPlan(
            seed=0,
            rules={"worker": FaultRule(kind="garbage", addresses=frozenset({(0, 0)}))},
        )
        breaker = CircuitBreaker(failure_threshold=100)
        executor = ProcessPoolBatchExecutor(
            random_state=7, max_workers=WORKERS, breaker=breaker
        )
        with fault_scope(plan):
            remote, remote_ledger = _run(table, executor, udf_remote)
        _assert_parity(serial, serial_ledger, udf_serial, remote, remote_ledger, udf_remote)
        snap = breaker.snapshot()
        assert snap["retried_spans"] >= 1
        assert snap["last_failure_reason"] == "garbage"

    def test_hung_worker_surfaces_typed_deadline_not_a_wedge(self):
        """Workers sleeping past the deadline: typed error, zero charges,
        zero leaked segments — within deadline + grace, never 5 s."""
        table = _sharded(name="hangtab")
        udf = _label_udf("hg")
        plan = FaultPlan(
            seed=0,
            rules={"worker": FaultRule(kind="hang", probability=1.0, sleep_s=5.0)},
        )
        breaker = CircuitBreaker(failure_threshold=100)
        executor = ProcessPoolBatchExecutor(
            random_state=7, max_workers=WORKERS, breaker=breaker
        )
        ledger = CostLedger()
        started = time.perf_counter()
        with fault_scope(plan), deadline_scope(Deadline.after(0.5)):
            with pytest.raises(DeadlineExceeded):
                _run(table, executor, udf, ledger=ledger)
        assert time.perf_counter() - started < 4.0  # grace, not the 5 s sleep
        # Charges happen only at fold; the harvest raised first.
        assert ledger.retrieved_count == 0
        assert ledger.evaluated_count == 0
        assert udf.counter_snapshot()["cache_misses"] == 0
        assert exported_segment_count() == 0
        assert breaker.snapshot()["last_failure_reason"] == "worker_hang"


class TestSharedMemoryFaults:
    def test_export_fault_falls_back_in_process(self):
        """The very first segment export fails: serve in-process, bitwise."""
        table = _sharded(name="exptab")
        udf_serial, udf_remote = _label_udf("ex_a"), _label_udf("ex_b")
        serial, serial_ledger = _serial_baseline(table, udf_serial)
        plan = FaultPlan(
            seed=0,
            rules={"shm_export": FaultRule(kind="error", addresses=frozenset({(0,)}))},
        )
        breaker = CircuitBreaker(failure_threshold=100)
        executor = ProcessPoolBatchExecutor(
            random_state=7, max_workers=WORKERS, breaker=breaker
        )
        with fault_scope(plan):
            remote, remote_ledger = _run(table, executor, udf_remote)
        _assert_parity(serial, serial_ledger, udf_serial, remote, remote_ledger, udf_remote)
        assert exported_segment_count() == 0
        snap = breaker.snapshot()
        assert snap["failures_total"] == 1
        assert snap["last_failure_reason"] == "shm_export"

    def test_attach_fault_in_worker_is_retried(self):
        """Each worker's first attach fails; the retry (counters advanced)
        succeeds on the same warm pool — parity, no respawn needed."""
        table = _sharded(name="atttab")
        udf_serial, udf_remote = _label_udf("at_a"), _label_udf("at_b")
        serial, serial_ledger = _serial_baseline(table, udf_serial)
        plan = FaultPlan(
            seed=0,
            rules={"shm_attach": FaultRule(kind="error", addresses=frozenset({(0,)}))},
        )
        breaker = CircuitBreaker(failure_threshold=100)
        executor = ProcessPoolBatchExecutor(
            random_state=7, max_workers=WORKERS, breaker=breaker
        )
        with fault_scope(plan):
            remote, remote_ledger = _run(table, executor, udf_remote)
        _assert_parity(serial, serial_ledger, udf_serial, remote, remote_ledger, udf_remote)
        snap = breaker.snapshot()
        assert snap["retried_spans"] >= 1
        assert snap["last_failure_reason"] == "shm_attach"


class TestServiceUnderFaults:
    def _service(self, name, udf):
        catalog = Catalog()
        catalog.register_table(_table(name=name))
        catalog.register_udf(udf)
        return QueryService(Engine(catalog))

    def _query(self, udf, table):
        return SelectQuery(
            table=table,
            predicate=UdfPredicate(udf),
            alpha=0.7,
            beta=0.7,
            rho=0.8,
            correlated_column="A",
        )

    def test_slow_udf_hits_the_request_deadline(self):
        """A sleep injected into every UDF evaluation round trips the
        cooperative checks between rounds: typed error, bounded latency."""
        udf = _func_udf("slowf")
        service = self._service("slowtab", udf)
        plan = FaultPlan(
            seed=0,
            rules={"udf_eval": FaultRule(kind="sleep", probability=1.0, sleep_s=0.06)},
        )
        started = time.perf_counter()
        with fault_scope(plan):
            with pytest.raises(DeadlineExceeded):
                service.submit(self._query(udf, "slowtab"), seed=1, timeout_s=0.15)
        assert time.perf_counter() - started < 4.0
        assert service.metrics()["deadline_exceeded"] == 1

    def test_udf_sleep_below_deadline_is_bitwise_invisible(self):
        """Slowness that stays inside the deadline changes nothing."""
        udf_a = _func_udf("calm_a")
        udf_b = _func_udf("calm_b")
        plain_service = self._service("calmtab", udf_a)
        slow_service = self._service("calmtab", udf_b)
        plain = plain_service.submit(self._query(udf_a, "calmtab"), seed=4)
        plan = FaultPlan(
            seed=0,
            rules={"udf_eval": FaultRule(kind="sleep", probability=0.2, sleep_s=0.005)},
        )
        with fault_scope(plan):
            slow = slow_service.submit(
                self._query(udf_b, "calmtab"), seed=4, timeout_s=60.0
            )
        assert np.array_equal(np.asarray(plain.row_ids), np.asarray(slow.row_ids))
        assert slow.ledger.total_cost == plain.ledger.total_cost
