"""Shared invariant for the resilience suite: no leaked resources.

Every test — including the ones that crash workers, hang them past the
deadline, or fail shared-memory exports on purpose — must leave zero
exported segments, zero dangling segment memmaps and zero torn temp files
behind after teardown.  The check itself lives in ``tests/leakcheck.py``
and is shared with the storage suite.
"""

import pytest

from leakcheck import assert_no_leaked_resources


@pytest.fixture(autouse=True)
def _no_leaked_resources():
    yield
    assert_no_leaked_resources()
