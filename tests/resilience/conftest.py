"""Shared invariant for the resilience suite: no leaked shm segments.

Every test — including the ones that crash workers, hang them past the
deadline, or fail shared-memory exports on purpose — must leave zero
exported segments behind after teardown.
"""

import pytest

from repro.db.shm import exported_segment_count, release_exports


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    yield
    release_exports()
    assert exported_segment_count() == 0
