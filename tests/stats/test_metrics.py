"""Tests for the precision/recall metrics (paper Section 2)."""

import pytest

from repro.stats.metrics import (
    ResultQuality,
    f1_score,
    precision,
    precision_from_counts,
    recall,
    recall_from_counts,
    result_quality,
)


class TestPrecisionRecall:
    def test_paper_definitions(self):
        returned = {1, 2, 3, 4}
        correct = {3, 4, 5, 6, 7, 8}
        assert precision(returned, correct) == pytest.approx(2 / 4)
        assert recall(returned, correct) == pytest.approx(2 / 6)

    def test_perfect_result(self):
        items = {1, 2, 3}
        assert precision(items, items) == 1.0
        assert recall(items, items) == 1.0

    def test_empty_result_has_perfect_precision(self):
        assert precision(set(), {1, 2}) == 1.0

    def test_empty_result_has_zero_recall(self):
        assert recall(set(), {1, 2}) == 0.0

    def test_no_correct_tuples_gives_perfect_recall(self):
        assert recall({1, 2}, set()) == 1.0

    def test_disjoint_sets(self):
        assert precision({1}, {2}) == 0.0
        assert recall({1}, {2}) == 0.0


class TestF1:
    def test_balanced_case(self):
        returned = {1, 2}
        correct = {2, 3}
        p, r = 0.5, 0.5
        assert f1_score(returned, correct) == pytest.approx(2 * p * r / (p + r))

    def test_zero_when_nothing_overlaps(self):
        assert f1_score({1}, {2}) == 0.0


class TestCountForms:
    def test_precision_from_counts(self):
        assert precision_from_counts(8, 10) == pytest.approx(0.8)

    def test_recall_from_counts(self):
        assert recall_from_counts(8, 16) == pytest.approx(0.5)

    def test_zero_denominators(self):
        assert precision_from_counts(0, 0) == 1.0
        assert recall_from_counts(0, 0) == 1.0

    def test_rejects_inconsistent_counts(self):
        with pytest.raises(ValueError):
            precision_from_counts(11, 10)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            recall_from_counts(-1, 10)


class TestResultQuality:
    def test_result_quality_counts(self):
        quality = result_quality([1, 2, 3], [2, 3, 4, 5])
        assert quality.returned_count == 3
        assert quality.correct_count == 4
        assert quality.true_positive_count == 2
        assert quality.precision == pytest.approx(2 / 3)
        assert quality.recall == pytest.approx(2 / 4)

    def test_satisfies_respects_both_bounds(self):
        quality = ResultQuality(
            precision=0.85, recall=0.75, returned_count=10, correct_count=10,
            true_positive_count=8,
        )
        assert quality.satisfies(0.8, 0.7)
        assert not quality.satisfies(0.8, 0.8)
        assert not quality.satisfies(0.9, 0.7)

    def test_satisfies_tolerates_floating_point(self):
        quality = result_quality(range(10), range(10))
        assert quality.satisfies(1.0, 1.0)

    def test_f1_property(self):
        quality = result_quality([1, 2], [2, 3])
        assert quality.f1 == pytest.approx(0.5)

    def test_duplicates_are_collapsed(self):
        quality = result_quality([1, 1, 2], [2])
        assert quality.returned_count == 2
