"""Tests for the seeded random-state helpers."""

import numpy as np
import pytest

from repro.stats.random import (
    RandomState,
    as_random_state,
    sample_without_replacement,
    spawn_children,
    stable_hash_seed,
)


class TestRandomState:
    def test_same_seed_same_stream(self):
        a = RandomState(42).random(5)
        b = RandomState(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomState(1).random(100)
        b = RandomState(2).random(100)
        assert not np.allclose(a, b)

    def test_wrapping_a_random_state_shares_the_stream(self):
        base = RandomState(7)
        wrapped = RandomState(base)
        first = base.random()
        second = wrapped.random()
        assert first != second  # the stream advanced, proving it is shared

    def test_bernoulli_respects_probability(self):
        rng = RandomState(0)
        draws = rng.bernoulli(0.2, size=20_000)
        assert 0.17 < draws.mean() < 0.23

    def test_spawn_produces_independent_children(self):
        children = RandomState(3).spawn(2)
        assert not np.allclose(children[0].random(10), children[1].random(10))

    def test_child_is_deterministic_given_parent_seed(self):
        a = RandomState(11).child().random(3)
        b = RandomState(11).child().random(3)
        assert np.allclose(a, b)

    def test_integers_within_bounds(self):
        values = RandomState(5).integers(0, 10, size=100)
        assert values.min() >= 0 and values.max() < 10

    def test_permutation_is_a_permutation(self):
        perm = RandomState(9).permutation(20)
        assert sorted(perm) == list(range(20))


class TestHelpers:
    def test_as_random_state_idempotent(self):
        state = RandomState(1)
        assert as_random_state(state) is state

    def test_spawn_children_count(self):
        assert len(spawn_children(0, 4)) == 4

    def test_sample_without_replacement_distinct(self):
        sample = sample_without_replacement(0, list(range(50)), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_without_replacement_whole_population(self):
        population = [1, 2, 3]
        assert sorted(sample_without_replacement(0, population, 10)) == population

    def test_stable_hash_seed_deterministic(self):
        assert stable_hash_seed("a", 1, 2.5) == stable_hash_seed("a", 1, 2.5)

    def test_stable_hash_seed_varies_with_input(self):
        assert stable_hash_seed("a", 1) != stable_hash_seed("a", 2)

    def test_stable_hash_seed_in_32_bit_range(self):
        seed = stable_hash_seed("dataset", "strategy", 123456789)
        assert 0 <= seed < 2**32
