"""Tests for the Chebyshev machinery used by the Section 3.3 programs."""

import math

import pytest

from repro.stats.chebyshev import (
    chebyshev_deviation_factor,
    chebyshev_tail_bound,
    required_deviations,
)


class TestDeviationFactor:
    def test_matches_paper_e_rho(self):
        assert chebyshev_deviation_factor(0.8) == pytest.approx(1.0 / math.sqrt(0.2))

    def test_grows_with_rho(self):
        assert chebyshev_deviation_factor(0.95) > chebyshev_deviation_factor(0.5)

    def test_rho_zero_is_one(self):
        assert chebyshev_deviation_factor(0.0) == pytest.approx(1.0)

    def test_rejects_rho_one(self):
        with pytest.raises(ValueError):
            chebyshev_deviation_factor(1.0)

    def test_rejects_negative_rho(self):
        with pytest.raises(ValueError):
            chebyshev_deviation_factor(-0.1)


class TestTailBound:
    def test_two_deviations(self):
        assert chebyshev_tail_bound(2.0) == pytest.approx(0.25)

    def test_bound_never_exceeds_one(self):
        assert chebyshev_tail_bound(0.5) == 1.0

    def test_non_positive_deviations_give_trivial_bound(self):
        assert chebyshev_tail_bound(0.0) == 1.0
        assert chebyshev_tail_bound(-1.0) == 1.0

    def test_consistent_with_deviation_factor(self):
        # Using e_rho deviations should give a failure probability <= 1 - rho.
        rho = 0.8
        k = chebyshev_deviation_factor(rho)
        assert chebyshev_tail_bound(k) <= (1.0 - rho) + 1e-12


class TestRequiredDeviations:
    def test_inverse_relationship(self):
        assert required_deviations(0.25) == pytest.approx(2.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            required_deviations(0.0)
