"""Tests for the Hoeffding margins used by the Section 3.2 LP."""

import math

import pytest

from repro.stats.hoeffding import (
    hoeffding_bound,
    hoeffding_precision_margin,
    hoeffding_recall_margin,
    hoeffding_sample_size,
    hoeffding_tail_probability,
)


class TestHoeffdingBound:
    def test_closed_form(self):
        # t = sqrt(ln(1/delta) * W / 2)
        assert hoeffding_bound(100.0, 0.1) == pytest.approx(
            math.sqrt(math.log(10.0) * 100.0 / 2.0)
        )

    def test_zero_range_gives_zero_margin(self):
        assert hoeffding_bound(0.0, 0.05) == 0.0

    def test_margin_grows_with_confidence(self):
        assert hoeffding_bound(100.0, 0.01) > hoeffding_bound(100.0, 0.2)

    def test_margin_grows_with_range(self):
        assert hoeffding_bound(400.0, 0.1) == pytest.approx(2 * hoeffding_bound(100.0, 0.1))

    def test_failure_probability_one_means_no_margin(self):
        assert hoeffding_bound(100.0, 1.0) == 0.0

    def test_rejects_negative_range(self):
        with pytest.raises(ValueError):
            hoeffding_bound(-1.0, 0.1)

    def test_rejects_zero_failure_probability(self):
        with pytest.raises(ValueError):
            hoeffding_bound(10.0, 0.0)


class TestPrecisionRecallMargins:
    def test_precision_margin_scales_with_sqrt_n(self):
        assert hoeffding_precision_margin(4000, 0.8) == pytest.approx(
            2 * hoeffding_precision_margin(1000, 0.8)
        )

    def test_recall_margin_shrinks_with_beta(self):
        # Tighter beta -> narrower per-tuple range -> smaller margin.
        assert hoeffding_recall_margin(1000, 0.9, 0.8) < hoeffding_recall_margin(
            1000, 0.5, 0.8
        )

    def test_recall_margin_zero_at_beta_one(self):
        assert hoeffding_recall_margin(1000, 1.0, 0.8) == 0.0

    def test_margins_increase_with_rho(self):
        assert hoeffding_precision_margin(1000, 0.95) > hoeffding_precision_margin(
            1000, 0.5
        )

    def test_margin_is_sublinear_in_n(self):
        # O(sqrt(n)): doubling n should not double the margin.
        assert hoeffding_precision_margin(2000, 0.8) < 2 * hoeffding_precision_margin(
            1000, 0.8
        )

    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            hoeffding_precision_margin(100, 1.0)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            hoeffding_recall_margin(100, 1.5, 0.8)

    def test_rejects_negative_tuples(self):
        with pytest.raises(ValueError):
            hoeffding_precision_margin(-5, 0.8)


class TestSampleSizeAndTails:
    def test_sample_size_inverse_of_bound(self):
        n = hoeffding_sample_size(0.05, 0.1)
        # With n samples the two-sided tail at margin 0.05 is at most 0.1.
        assert 2 * math.exp(-2 * n * 0.05**2) <= 0.1 + 1e-9

    def test_sample_size_grows_with_precision(self):
        assert hoeffding_sample_size(0.01, 0.1) > hoeffding_sample_size(0.1, 0.1)

    def test_tail_probability_decreases_with_margin(self):
        ranges = [1.0] * 100
        assert hoeffding_tail_probability(20.0, ranges) < hoeffding_tail_probability(
            5.0, ranges
        )

    def test_tail_probability_capped_at_one(self):
        assert hoeffding_tail_probability(0.0, [1.0]) == 1.0

    def test_tail_probability_zero_ranges(self):
        assert hoeffding_tail_probability(1.0, []) == 0.0

    def test_sample_size_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.0, 0.1)
