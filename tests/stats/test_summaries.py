"""Tests for the summary-statistics helpers."""

import pytest

from repro.stats.summaries import (
    mean_and_deviation,
    pearson_correlation,
    summarize_series,
)


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize_series([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_population_std(self):
        summary = summarize_series([2.0, 4.0])
        assert summary.std == pytest.approx(1.0)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            summarize_series([])

    def test_as_dict_round_trip(self):
        summary = summarize_series([5.0])
        assert summary.as_dict()["count"] == 1

    def test_mean_and_deviation_helper(self):
        mean, std = mean_and_deviation([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_constant_series_gives_zero(self):
        assert pearson_correlation([1, 1, 1], [2, 4, 6]) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [2])

    def test_bounded_in_unit_interval(self):
        value = pearson_correlation([1, 5, 2, 8, 3], [2, 1, 9, 4, 7])
        assert -1.0 <= value <= 1.0
