"""Tests for the Beta-posterior selectivity estimates (paper Section 4.1)."""

import math

import pytest

from repro.stats.beta import BetaPosterior, beta_mean, beta_variance


class TestBetaMean:
    def test_matches_paper_formula(self):
        # s_a = (F+ + 1) / (F + 2)
        assert beta_mean(9, 1) == pytest.approx(10 / 12)

    def test_uninformed_prior_is_half(self):
        assert beta_mean(0, 0) == pytest.approx(0.5)

    def test_all_positive_sample(self):
        assert beta_mean(10, 0) == pytest.approx(11 / 12)

    def test_all_negative_sample(self):
        assert beta_mean(0, 10) == pytest.approx(1 / 12)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            beta_mean(-1, 2)


class TestBetaVariance:
    def test_matches_paper_formula(self):
        mean = beta_mean(4, 6)
        assert beta_variance(4, 6) == pytest.approx(mean * (1 - mean) / 13)

    def test_variance_shrinks_with_more_samples(self):
        assert beta_variance(50, 50) < beta_variance(5, 5)

    def test_uninformed_variance_is_largest(self):
        assert beta_variance(0, 0) >= beta_variance(1, 1)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            beta_variance(1, -2)


class TestBetaPosterior:
    def test_sample_size(self):
        posterior = BetaPosterior(positives=7, negatives=3)
        assert posterior.sample_size == 10

    def test_shape_parameters(self):
        posterior = BetaPosterior(positives=7, negatives=3)
        assert posterior.alpha == 8
        assert posterior.beta == 4

    def test_mean_and_variance_agree_with_functions(self):
        posterior = BetaPosterior(positives=7, negatives=3)
        assert posterior.mean == pytest.approx(beta_mean(7, 3))
        assert posterior.variance == pytest.approx(beta_variance(7, 3))

    def test_std_is_sqrt_of_variance(self):
        posterior = BetaPosterior(positives=7, negatives=3)
        assert posterior.std == pytest.approx(math.sqrt(posterior.variance))

    def test_updated_accumulates_counts(self):
        posterior = BetaPosterior(positives=2, negatives=1).updated(3, 4)
        assert posterior.positives == 5
        assert posterior.negatives == 5

    def test_from_labels(self):
        posterior = BetaPosterior.from_labels([True, False, True, True])
        assert posterior.positives == 3
        assert posterior.negatives == 1

    def test_uninformed_constructor(self):
        posterior = BetaPosterior.uninformed()
        assert posterior.sample_size == 0
        assert posterior.mean == pytest.approx(0.5)

    def test_credible_interval_contains_mean(self):
        posterior = BetaPosterior(positives=30, negatives=10)
        low, high = posterior.credible_interval(0.9)
        assert low < posterior.mean < high

    def test_credible_interval_narrows_with_samples(self):
        wide = BetaPosterior(positives=3, negatives=1).credible_interval(0.9)
        narrow = BetaPosterior(positives=300, negatives=100).credible_interval(0.9)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_credible_interval_rejects_bad_level(self):
        with pytest.raises(ValueError):
            BetaPosterior(1, 1).credible_interval(1.5)

    def test_cdf_monotone(self):
        posterior = BetaPosterior(positives=5, negatives=5)
        assert posterior.cdf(0.2) < posterior.cdf(0.8)

    def test_pdf_positive_inside_support(self):
        posterior = BetaPosterior(positives=5, negatives=5)
        assert posterior.pdf(0.5) > 0.0

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            BetaPosterior(positives=-1, negatives=0)
