"""Tests for the SLSQP-backed convex solver."""

import math

import numpy as np
import pytest

from repro.solvers.convex import ConvexProblem, ConvexSolver
from repro.solvers.linear import InfeasibleProblemError


def make_socp_problem():
    """minimize x + y subject to x + y - sqrt((1-x)^2 + (1-y)^2) >= 0."""

    def constraint(v):
        x, y = v
        return x + y - math.sqrt((1 - x) ** 2 + (1 - y) ** 2)

    return ConvexProblem(objective=[1.0, 1.0], inequality_constraints=[constraint])


class TestConvexProblem:
    def test_cost(self):
        problem = ConvexProblem(objective=[2.0, 3.0])
        assert problem.cost(np.array([1.0, 1.0])) == pytest.approx(5.0)

    def test_violation_zero_for_feasible_point(self):
        problem = make_socp_problem()
        assert problem.violation(np.array([1.0, 1.0])) == pytest.approx(0.0)

    def test_violation_positive_for_infeasible_point(self):
        problem = make_socp_problem()
        assert problem.violation(np.array([0.0, 0.0])) > 0.0

    def test_bounds_violation_detected(self):
        problem = ConvexProblem(objective=[1.0])
        assert problem.violation(np.array([1.5])) > 0.0

    def test_linear_inequality_violation(self):
        problem = ConvexProblem(objective=[1.0, 1.0])
        problem.linear_inequalities.append(([1.0, -1.0], 0.0))  # x >= y
        assert problem.is_feasible(np.array([0.5, 0.2]))
        assert not problem.is_feasible(np.array([0.2, 0.5]))


class TestConvexSolver:
    def test_solves_socp_like_problem(self):
        problem = make_socp_problem()
        solution = ConvexSolver().solve(problem)
        assert solution.feasible
        # The symmetric optimum is around x = y ~ 0.414 (cost ~ 0.83).
        assert solution.objective_value < 1.0
        assert problem.is_feasible(solution.values, 1e-5)

    def test_warm_start_is_used_or_beaten(self):
        problem = make_socp_problem()
        warm = [0.9, 0.9]
        solution = ConvexSolver().solve(problem, warm_starts=[warm])
        assert solution.objective_value <= problem.cost(np.array(warm)) + 1e-6

    def test_linear_coupling_respected(self):
        problem = ConvexProblem(objective=[1.0, -1.0])
        problem.linear_inequalities.append(([1.0, -1.0], 0.0))  # x >= y
        solution = ConvexSolver().solve(problem)
        assert solution.values[0] >= solution.values[1] - 1e-6

    def test_infeasible_problem_raises(self):
        problem = ConvexProblem(
            objective=[1.0],
            inequality_constraints=[lambda v: v[0] - 2.0],  # impossible in [0, 1]
        )
        with pytest.raises(InfeasibleProblemError):
            ConvexSolver().solve(problem)

    def test_unconstrained_problem_goes_to_lower_bound(self):
        problem = ConvexProblem(objective=[1.0, 1.0])
        solution = ConvexSolver().solve(problem)
        assert solution.objective_value == pytest.approx(0.0, abs=1e-6)

    def test_fallback_to_feasible_start(self):
        # A constraint whose gradient is zero almost everywhere can defeat
        # SLSQP; the solver must still return some feasible point.
        def nasty(v):
            return 1.0 if v[0] > 0.95 else -1.0

        problem = ConvexProblem(objective=[1.0], inequality_constraints=[nasty])
        solution = ConvexSolver().solve(problem)
        assert solution.feasible
        assert nasty(solution.values) >= 0.0
