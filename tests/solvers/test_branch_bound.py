"""Tests for the 0/1 branch-and-bound solver."""

import itertools

import numpy as np
import pytest

from repro.solvers.branch_bound import BranchAndBoundSolver, IntegerProgram
from repro.solvers.linear import InfeasibleProblemError


def brute_force_optimum(program: IntegerProgram):
    best = None
    for assignment in itertools.product((0.0, 1.0), repeat=program.num_variables):
        if program.is_feasible(assignment):
            cost = program.cost(assignment)
            if best is None or cost < best:
                best = cost
    return best


class TestIntegerProgram:
    def test_feasibility_check(self):
        program = IntegerProgram(objective=[1.0, 1.0])
        program.constraints_ge.append(([1.0, 1.0], 1.0))
        assert program.is_feasible([1.0, 0.0])
        assert not program.is_feasible([0.0, 0.0])

    def test_cost(self):
        program = IntegerProgram(objective=[2.0, 5.0])
        assert program.cost([1.0, 1.0]) == pytest.approx(7.0)


class TestBranchAndBound:
    def test_small_cover_problem(self):
        # Choose cheapest subset covering value >= 2.
        program = IntegerProgram(objective=[3.0, 2.0, 2.5])
        program.constraints_ge.append(([1.0, 1.0, 1.0], 2.0))
        solution = BranchAndBoundSolver().solve(program)
        assert solution.objective_value == pytest.approx(4.5)

    def test_brute_force_and_bnb_agree(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            n = 6
            objective = rng.uniform(1.0, 5.0, size=n).tolist()
            program = IntegerProgram(objective=objective)
            weights = rng.uniform(0.5, 2.0, size=n)
            program.constraints_ge.append((weights.tolist(), float(weights.sum() * 0.4)))
            solver = BranchAndBoundSolver(brute_force_threshold=0)  # force B&B
            solution = solver.solve(program)
            assert solution.objective_value == pytest.approx(
                brute_force_optimum(program), abs=1e-6
            )

    def test_infeasible_program_raises(self):
        program = IntegerProgram(objective=[1.0])
        program.constraints_ge.append(([1.0], 2.0))
        with pytest.raises(InfeasibleProblemError):
            BranchAndBoundSolver().solve(program)

    def test_solution_is_binary(self):
        program = IntegerProgram(objective=[1.0, 1.0, 1.0])
        program.constraints_ge.append(([1.0, 2.0, 3.0], 3.5))
        solution = BranchAndBoundSolver(brute_force_threshold=0).solve(program)
        assert set(np.round(solution.values, 6)) <= {0.0, 1.0}

    def test_implication_constraint(self):
        # x0 >= x1 encoded as a >= row; forcing x1 = 1 must force x0 = 1.
        program = IntegerProgram(objective=[5.0, 1.0])
        program.constraints_ge.append(([1.0, -1.0], 0.0))
        program.constraints_ge.append(([0.0, 1.0], 1.0))
        solution = BranchAndBoundSolver().solve(program)
        assert solution.values[0] == pytest.approx(1.0)
        assert solution.values[1] == pytest.approx(1.0)
