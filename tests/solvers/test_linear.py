"""Tests for the LP wrapper."""

import numpy as np
import pytest

from repro.solvers.linear import (
    InfeasibleProblemError,
    LinearProgram,
    solve_linear_program,
)


class TestLinearProgram:
    def test_simple_minimization(self):
        # minimize x + 2y subject to x + y >= 1, bounds [0, 1].
        program = LinearProgram(objective=[1.0, 2.0])
        program.add_ge([1.0, 1.0], 1.0)
        solution = solve_linear_program(program)
        assert solution.objective_value == pytest.approx(1.0)
        assert solution.values[0] == pytest.approx(1.0)
        assert solution.values[1] == pytest.approx(0.0)

    def test_equality_constraint(self):
        program = LinearProgram(objective=[1.0, 1.0])
        program.add_eq([1.0, -1.0], 0.0)
        program.add_ge([1.0, 1.0], 1.0)
        solution = solve_linear_program(program)
        assert solution.values[0] == pytest.approx(solution.values[1])

    def test_custom_bounds(self):
        program = LinearProgram(objective=[-1.0], bounds=[(0.0, 5.0)])
        solution = solve_linear_program(program)
        assert solution.values[0] == pytest.approx(5.0)

    def test_infeasible_problem_raises(self):
        program = LinearProgram(objective=[1.0])
        program.add_ge([1.0], 2.0)  # impossible with bound [0, 1]
        with pytest.raises(InfeasibleProblemError):
            solve_linear_program(program)

    def test_constraint_dimension_checked(self):
        program = LinearProgram(objective=[1.0, 2.0])
        with pytest.raises(ValueError):
            program.add_ge([1.0], 1.0)
        with pytest.raises(ValueError):
            program.add_eq([1.0, 2.0, 3.0], 1.0)

    def test_solution_is_iterable(self):
        program = LinearProgram(objective=[1.0, 1.0])
        program.add_ge([1.0, 0.0], 0.5)
        solution = solve_linear_program(program)
        values = list(solution)
        assert len(values) == 2

    def test_num_variables(self):
        assert LinearProgram(objective=[1.0, 2.0, 3.0]).num_variables == 3

    def test_multiple_constraints_all_respected(self):
        program = LinearProgram(objective=[1.0, 1.0, 1.0])
        program.add_ge([1.0, 0.0, 0.0], 0.3)
        program.add_ge([0.0, 1.0, 0.0], 0.4)
        program.add_ge([1.0, 1.0, 1.0], 1.0)
        solution = solve_linear_program(program)
        x = np.asarray(solution.values)
        assert x[0] >= 0.3 - 1e-9
        assert x[1] >= 0.4 - 1e-9
        assert x.sum() >= 1.0 - 1e-9
