"""Tests for the minimum-knapsack machinery."""

import pytest

from repro.solvers.knapsack import KnapsackItem, min_knapsack_dp, min_knapsack_greedy


def items_from(tuples):
    return [KnapsackItem(identifier=i, weight=w, value=v) for i, (w, v) in enumerate(tuples)]


class TestMinKnapsackDp:
    def test_simple_optimal_choice(self):
        # Items: (weight, value).  Target value 5: best is item 1 alone (w=4).
        items = items_from([(3, 3), (4, 5), (5, 4)])
        chosen, weight = min_knapsack_dp(items, 5)
        assert weight == pytest.approx(4)
        assert [item.identifier for item in chosen] == [1]

    def test_combination_beats_single_item(self):
        items = items_from([(2, 3), (2, 3), (7, 6)])
        chosen, weight = min_knapsack_dp(items, 6)
        assert weight == pytest.approx(4)
        assert len(chosen) == 2

    def test_zero_target_selects_nothing(self):
        items = items_from([(1, 1)])
        chosen, weight = min_knapsack_dp(items, 0)
        assert chosen == []
        assert weight == 0.0

    def test_unreachable_target_rejected(self):
        items = items_from([(1, 1), (1, 1)])
        with pytest.raises(ValueError):
            min_knapsack_dp(items, 5)

    def test_fractional_values_with_scaling(self):
        items = [
            KnapsackItem("a", weight=1.0, value=0.6),
            KnapsackItem("b", weight=1.0, value=0.5),
            KnapsackItem("c", weight=3.0, value=1.2),
        ]
        chosen, weight = min_knapsack_dp(items, 1.0, scale=10)
        assert weight == pytest.approx(2.0)
        assert {item.identifier for item in chosen} == {"a", "b"}

    def test_negative_item_attributes_rejected(self):
        with pytest.raises(ValueError):
            KnapsackItem("x", weight=-1, value=1)


class TestMinKnapsackGreedy:
    def test_greedy_covers_target(self):
        items = items_from([(3, 3), (4, 5), (5, 4)])
        chosen, weight = min_knapsack_greedy(items, 5)
        assert sum(item.value for item in chosen) >= 5

    def test_greedy_never_beats_dp(self):
        items = items_from([(2, 3), (2, 3), (7, 6), (1, 1), (4, 5)])
        for target in (1, 3, 5, 8, 10):
            _, dp_weight = min_knapsack_dp(items, target)
            _, greedy_weight = min_knapsack_greedy(items, target)
            assert greedy_weight >= dp_weight - 1e-9

    def test_greedy_unreachable_target_rejected(self):
        with pytest.raises(ValueError):
            min_knapsack_greedy(items_from([(1, 1)]), 10)

    def test_greedy_zero_target(self):
        chosen, weight = min_knapsack_greedy(items_from([(1, 1)]), 0)
        assert chosen == [] and weight == 0.0
