"""Tests for the Naive, Learning and Multiple baselines."""

import math

import pytest

from repro.baselines import LearningBaseline, MultipleImputationBaseline, NaiveBaseline
from repro.core.constraints import QueryConstraints
from repro.db.udf import CostLedger
from repro.stats.metrics import result_quality


@pytest.fixture
def constraints():
    return QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)


class TestNaive:
    def test_evaluates_beta_fraction(self, small_lending_club, constraints):
        ledger = CostLedger()
        NaiveBaseline(random_state=0).answer(
            small_lending_club.table, small_lending_club.make_udf("naive"),
            constraints, ledger,
        )
        expected = math.ceil(constraints.beta * small_lending_club.num_rows)
        assert ledger.evaluated_count == expected
        assert ledger.retrieved_count == expected

    def test_perfect_precision(self, small_lending_club, constraints):
        result = NaiveBaseline(random_state=1).answer(
            small_lending_club.table, small_lending_club.make_udf("naive_p"),
            constraints, CostLedger(),
        )
        quality = result_quality(result.row_ids, small_lending_club.ground_truth_row_ids())
        assert quality.precision == 1.0

    def test_recall_close_to_beta_in_expectation(self, small_lending_club, constraints):
        recalls = []
        for seed in range(5):
            result = NaiveBaseline(random_state=seed).answer(
                small_lending_club.table, small_lending_club.make_udf(f"naive_{seed}"),
                constraints, CostLedger(),
            )
            quality = result_quality(
                result.row_ids, small_lending_club.ground_truth_row_ids()
            )
            recalls.append(quality.recall)
        average = sum(recalls) / len(recalls)
        assert abs(average - constraints.beta) < 0.05

    def test_beta_zero_returns_nothing(self, small_lending_club):
        result = NaiveBaseline(random_state=2).answer(
            small_lending_club.table, small_lending_club.make_udf("naive_zero"),
            QueryConstraints(alpha=0.8, beta=0.0, rho=0.8), CostLedger(),
        )
        assert result.row_ids == []

    def test_metadata(self, small_lending_club, constraints):
        result = NaiveBaseline(random_state=3).answer(
            small_lending_club.table, small_lending_club.make_udf("naive_meta"),
            constraints, CostLedger(),
        )
        assert result.metadata["strategy"] == "naive"


class TestLearning:
    def test_meets_constraints(self, tiny_lending_club, constraints):
        dataset = tiny_lending_club
        result = LearningBaseline(random_state=0).answer(
            dataset.table, dataset.make_udf("learning"), constraints, CostLedger()
        )
        quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
        assert quality.satisfies(constraints.alpha, constraints.beta)

    def test_cost_includes_training_evaluations(self, tiny_lending_club, constraints):
        dataset = tiny_lending_club
        ledger = CostLedger()
        result = LearningBaseline(random_state=1).answer(
            dataset.table, dataset.make_udf("learning_cost"), constraints, ledger
        )
        assert ledger.evaluated_count == result.metadata["training_size"]
        assert ledger.evaluated_count > 0
        assert ledger.evaluated_count < dataset.num_rows

    def test_training_fractions_validated(self):
        with pytest.raises(ValueError):
            LearningBaseline(training_fractions=())

    def test_easy_constraints_use_smallest_fraction(self, tiny_lending_club):
        dataset = tiny_lending_club
        loose = QueryConstraints(alpha=0.1, beta=0.1, rho=0.8)
        result = LearningBaseline(
            training_fractions=(0.05, 0.5), random_state=2
        ).answer(dataset.table, dataset.make_udf("learning_easy"), loose, CostLedger())
        assert result.metadata["training_size"] <= int(0.05 * dataset.num_rows) + 1


class TestMultiple:
    def test_meets_constraints(self, tiny_lending_club, constraints):
        dataset = tiny_lending_club
        result = MultipleImputationBaseline(random_state=0).answer(
            dataset.table, dataset.make_udf("multiple"), constraints, CostLedger()
        )
        quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
        assert quality.satisfies(constraints.alpha, constraints.beta)

    def test_metadata_and_cost(self, tiny_lending_club, constraints):
        dataset = tiny_lending_club
        ledger = CostLedger()
        result = MultipleImputationBaseline(random_state=1).answer(
            dataset.table, dataset.make_udf("multiple_cost"), constraints, ledger
        )
        assert result.metadata["strategy"] == "multiple_imputation"
        assert ledger.evaluated_count == result.metadata["training_size"]

    def test_rejects_empty_training_schedule(self):
        with pytest.raises(ValueError):
            MultipleImputationBaseline(training_fractions=())
