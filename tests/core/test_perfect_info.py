"""Tests for the perfect-information optimizer (paper Section 3.1)."""

import pytest

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.perfect_info import (
    greedy_perfect_information,
    knapsack_to_perfect_information,
    solve_perfect_information,
)
from repro.solvers.knapsack import KnapsackItem, min_knapsack_dp


class TestExactSolver:
    def test_paper_example_3_1(self, example_model, default_cost_model):
        """The paper's Example 3.1: return group 1, evaluate group 2, drop group 3."""
        constraints = QueryConstraints(alpha=0.9, beta=0.9, rho=0.8)
        solution = solve_perfect_information(example_model, constraints, default_cost_model)
        plan = solution.plan
        assert plan.decision(1).retrieve_probability == 1.0
        assert plan.decision(1).evaluate_probability == 0.0
        assert plan.decision(2).retrieve_probability == 1.0
        assert plan.decision(2).evaluate_probability == 1.0
        assert plan.decision(3).retrieve_probability == 0.0
        # Cost: 1000 retrievals (group 1) + 1000 retrieve+evaluate (group 2).
        assert solution.cost == pytest.approx(1000 * 1.0 + 1000 * 4.0)

    def test_constraints_hold_for_returned_plan(self, example_model):
        constraints = QueryConstraints(alpha=0.9, beta=0.9, rho=0.8)
        solution = solve_perfect_information(example_model, constraints)
        plan = solution.plan
        returned_correct = sum(
            group.correct_count * plan.decision(group.key).retrieve_probability
            for group in example_model
        )
        returned_incorrect = sum(
            group.incorrect_count
            * (
                plan.decision(group.key).retrieve_probability
                - plan.decision(group.key).evaluate_probability
            )
            for group in example_model
        )
        total_correct = sum(group.correct_count for group in example_model)
        assert returned_correct >= 0.9 * total_correct - 1e-9
        assert returned_correct / (returned_correct + returned_incorrect) >= 0.9 - 1e-9

    def test_relaxed_constraints_cost_no_more(self, example_model):
        strict = solve_perfect_information(
            example_model, QueryConstraints(alpha=0.9, beta=0.9, rho=0.8)
        )
        relaxed = solve_perfect_information(
            example_model, QueryConstraints(alpha=0.5, beta=0.5, rho=0.8)
        )
        assert relaxed.cost <= strict.cost + 1e-9

    def test_zero_recall_requires_nothing(self, example_model):
        solution = solve_perfect_information(
            example_model, QueryConstraints(alpha=0.5, beta=0.0, rho=0.8)
        )
        assert solution.cost == pytest.approx(0.0)

    def test_full_precision_and_recall_evaluates_everything_retrieved(self, example_model):
        solution = solve_perfect_information(
            example_model, QueryConstraints(alpha=1.0, beta=1.0, rho=0.8)
        )
        plan = solution.plan
        for group in example_model:
            decision = plan.decision(group.key)
            if group.correct_count > 0:
                assert decision.retrieve_probability == 1.0
            # Any group containing incorrect tuples that is retrieved must be evaluated.
            if decision.retrieve_probability == 1.0 and group.incorrect_count > 0:
                assert decision.evaluate_probability == 1.0

    def test_requires_exact_counts(self, selectivity_model):
        with pytest.raises(ValueError):
            solve_perfect_information(
                selectivity_model, QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
            )

    def test_deterministic_plan(self, example_model, default_constraints):
        solution = solve_perfect_information(example_model, default_constraints)
        assert solution.plan.is_deterministic
        assert solution.optimal


class TestGreedyHeuristic:
    def test_greedy_feasible_and_not_better_than_exact(self, example_model):
        constraints = QueryConstraints(alpha=0.9, beta=0.9, rho=0.8)
        exact = solve_perfect_information(example_model, constraints)
        greedy = greedy_perfect_information(example_model, constraints)
        assert greedy.cost >= exact.cost - 1e-9

    def test_greedy_matches_exact_on_paper_example(self, example_model):
        constraints = QueryConstraints(alpha=0.9, beta=0.9, rho=0.8)
        exact = solve_perfect_information(example_model, constraints)
        greedy = greedy_perfect_information(example_model, constraints)
        assert greedy.cost == pytest.approx(exact.cost)

    def test_greedy_plan_is_deterministic(self, example_model, default_constraints):
        greedy = greedy_perfect_information(example_model, default_constraints)
        assert greedy.plan.is_deterministic
        assert not greedy.optimal


class TestKnapsackReduction:
    def test_reduction_preserves_optimal_selection(self):
        """Theorem 3.2: minimum knapsack reduces to Problem 1 with alpha = 0."""
        items = [
            KnapsackItem("x", weight=4, value=3),
            KnapsackItem("y", weight=5, value=4),
            KnapsackItem("z", weight=9, value=6),
        ]
        target = 7.0
        _, knapsack_weight = min_knapsack_dp(items, target)

        model, constraints = knapsack_to_perfect_information(items, target)
        solution = solve_perfect_information(model, constraints, CostModel(1.0, 0.0))

        # The retrieval cost of the Problem 1 solution equals the (scaled)
        # knapsack weight: selected groups have size w_s * scale.
        selected = [
            group.key for group in model
            if solution.plan.decision(group.key).retrieve_probability > 0.5
        ]
        selected_value = sum(
            item.value for item in items if item.identifier in selected
        )
        selected_weight = sum(
            item.weight for item in items if item.identifier in selected
        )
        assert selected_value >= target - 1e-9
        assert selected_weight == pytest.approx(knapsack_weight)

    def test_reduction_rejects_empty_instance(self):
        with pytest.raises(ValueError):
            knapsack_to_perfect_information([], 1.0)
