"""Tests for the probabilistic plan executor."""

import pytest

from repro.core.executor import PlanExecutor
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.db.udf import CostLedger
from repro.sampling.sampler import GroupSampler
from repro.stats.metrics import result_quality


class TestDeterministicPlans:
    def test_evaluate_everything_returns_ground_truth(
        self, toy_table, toy_index, toy_udf, toy_truth
    ):
        plan = ExecutionPlan.evaluate_everything(toy_index.values)
        ledger = CostLedger()
        result = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, ledger
        )
        assert result.returned_set == toy_truth
        assert ledger.retrieved_count == toy_table.num_rows
        assert ledger.evaluated_count == toy_table.num_rows

    def test_discard_everything_returns_nothing(self, toy_table, toy_index, toy_udf):
        plan = ExecutionPlan.discard_everything(toy_index.values)
        result = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        assert result.returned_row_ids == []
        assert result.total_cost == 0.0

    def test_return_without_evaluation_keeps_incorrect_tuples(
        self, toy_table, toy_index, toy_udf, toy_truth
    ):
        plan = ExecutionPlan(
            {1: GroupDecision.return_all(), 2: GroupDecision.return_all(), 3: GroupDecision.discard()}
        )
        ledger = CostLedger()
        result = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, ledger
        )
        assert len(result.returned_row_ids) == 7  # groups 1 and 2 in full
        assert ledger.evaluated_count == 0
        quality = result_quality(result.returned_row_ids, toy_truth)
        assert quality.precision == pytest.approx(5 / 7)

    def test_paper_example_plan(self, toy_table, toy_index, toy_udf, toy_truth):
        # Return group 1, evaluate group 2, discard group 3.
        plan = ExecutionPlan(
            {1: GroupDecision.return_all(), 2: GroupDecision.evaluate_all(), 3: GroupDecision.discard()}
        )
        ledger = CostLedger()
        result = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, ledger
        )
        quality = result_quality(result.returned_row_ids, toy_truth)
        assert quality.precision == 1.0  # group 1 all-correct, group 2 filtered
        assert ledger.evaluated_count == 3
        assert ledger.retrieved_count == 7

    def test_group_counts_bookkeeping(self, toy_table, toy_index, toy_udf):
        plan = ExecutionPlan({2: GroupDecision.evaluate_all()})
        result = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        counts = result.group_counts[2]
        assert counts.evaluated == 3
        assert counts.evaluated_correct == 1
        assert counts.evaluated_incorrect == 2
        assert counts.returned == 1


class TestProbabilisticPlans:
    def test_fractional_retrieval_probability_respected(self, small_lending_club):
        table = small_lending_club.table
        udf = small_lending_club.make_udf("frac")
        from repro.db.index import GroupIndex

        index = GroupIndex(table, "grade")
        plan = ExecutionPlan(
            {key: GroupDecision(retrieve=0.5, evaluate=0.0) for key in index.values}
        )
        ledger = CostLedger()
        result = PlanExecutor(random_state=1).execute(table, index, udf, plan, ledger)
        fraction = ledger.retrieved_count / table.num_rows
        assert 0.4 < fraction < 0.6
        assert ledger.evaluated_count == 0

    def test_conditional_evaluation_probability(self, small_lending_club):
        table = small_lending_club.table
        udf = small_lending_club.make_udf("cond")
        from repro.db.index import GroupIndex

        index = GroupIndex(table, "grade")
        plan = ExecutionPlan(
            {key: GroupDecision(retrieve=1.0, evaluate=0.3) for key in index.values}
        )
        ledger = CostLedger()
        PlanExecutor(random_state=2).execute(table, index, udf, plan, ledger)
        fraction = ledger.evaluated_count / table.num_rows
        assert 0.2 < fraction < 0.4

    def test_deterministic_given_seed(self, toy_table, toy_index, toy_udf):
        plan = ExecutionPlan(
            {key: GroupDecision(retrieve=0.5, evaluate=0.25) for key in toy_index.values}
        )
        a = PlanExecutor(random_state=3).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        b = PlanExecutor(random_state=3).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        assert a.returned_row_ids == b.returned_row_ids


class TestSampledTupleHandling:
    def test_sampled_positives_returned_for_free(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 4, 2: 3, 3: 5}, CostLedger()
        )
        plan = ExecutionPlan.discard_everything(toy_index.values)
        ledger = CostLedger()
        result = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, ledger, sample_outcome=outcome
        )
        # Every positive found during sampling is in the output even though the
        # plan discards everything, and execution charges nothing extra.
        assert result.returned_set == set(outcome.positive_row_ids())
        assert ledger.total_cost == 0.0

    def test_sampled_rows_not_reprocessed(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 2, 2: 2, 3: 2}, CostLedger()
        )
        plan = ExecutionPlan.evaluate_everything(toy_index.values)
        ledger = CostLedger()
        PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, ledger, sample_outcome=outcome
        )
        assert ledger.evaluated_count == toy_table.num_rows - 6

    def test_returned_set_is_cached_and_read_only(self, toy_table, toy_index, toy_udf):
        plan = ExecutionPlan.evaluate_everything(toy_index.values)
        result = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger()
        )
        first = result.returned_set
        assert first is result.returned_set  # built once, not per access
        assert isinstance(first, frozenset)

    def test_no_duplicates_in_output(self, toy_table, toy_index, toy_udf, toy_truth):
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 4, 2: 3, 3: 5}, CostLedger()
        )
        plan = ExecutionPlan.evaluate_everything(toy_index.values)
        result = PlanExecutor(random_state=0).execute(
            toy_table, toy_index, toy_udf, plan, CostLedger(), sample_outcome=outcome
        )
        assert len(result.returned_row_ids) == len(set(result.returned_row_ids))
        assert result.returned_set == toy_truth
