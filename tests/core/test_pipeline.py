"""End-to-end tests for the Intel-Sample pipeline and the Optimal oracle."""

import pytest

from repro.core.adaptive import AdaptiveIntelSample
from repro.core.constraints import QueryConstraints
from repro.core.pipeline import IntelSample, OptimalOracle
from repro.db.udf import CostLedger
from repro.sampling.schemes import FixedFractionScheme, TwoThirdPowerScheme
from repro.stats.metrics import result_quality


@pytest.fixture
def constraints():
    return QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)


class TestIntelSample:
    def test_meets_constraints_with_designated_column(
        self, small_lending_club, constraints
    ):
        dataset = small_lending_club
        satisfied = 0
        runs = 5
        for seed in range(runs):
            ledger = CostLedger()
            result = IntelSample(random_state=seed).answer(
                dataset.table,
                dataset.make_udf(f"intel_{seed}"),
                constraints,
                ledger,
                correlated_column="grade",
            )
            quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
            if quality.satisfies(constraints.alpha, constraints.beta):
                satisfied += 1
        # rho = 0.8: allow at most one violation in five runs.
        assert satisfied >= runs - 1

    def test_cheaper_than_evaluating_everything(self, small_lending_club, constraints):
        dataset = small_lending_club
        ledger = CostLedger()
        IntelSample(random_state=1).answer(
            dataset.table, dataset.make_udf("cheap"), constraints, ledger,
            correlated_column="grade",
        )
        assert ledger.evaluated_count < dataset.num_rows

    def test_report_metadata_present(self, small_lending_club, constraints):
        dataset = small_lending_club
        result = IntelSample(random_state=2).answer(
            dataset.table, dataset.make_udf("meta"), constraints, CostLedger(),
            correlated_column="grade",
        )
        report = result.metadata["report"]
        assert report.correlated_column == "grade"
        assert report.sample_size > 0
        assert report.plan is not None
        assert result.metadata["strategy"] == "intel_sample"

    def test_automatic_column_selection(self, small_lending_club, constraints):
        dataset = small_lending_club
        result = IntelSample(random_state=3).answer(
            dataset.table, dataset.make_udf("auto"), constraints, CostLedger()
        )
        report = result.metadata["report"]
        assert report.correlated_column in dataset.candidate_columns()
        assert report.column_costs is not None

    def test_virtual_column_pipeline(self, small_lending_club, constraints):
        dataset = small_lending_club
        ledger = CostLedger()
        result = IntelSample(random_state=4, use_virtual_column=True).answer(
            dataset.table, dataset.make_udf("virtual"), constraints, ledger
        )
        report = result.metadata["report"]
        assert report.used_virtual_column
        assert report.correlated_column == "udf_score_bucket"
        quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
        assert quality.recall > 0.6  # sanity, not the probabilistic guarantee

    def test_custom_sampling_scheme(self, small_lending_club, constraints):
        dataset = small_lending_club
        scheme = FixedFractionScheme(0.05)
        result = IntelSample(random_state=5, sampling_scheme=scheme).answer(
            dataset.table, dataset.make_udf("scheme"), constraints, CostLedger(),
            correlated_column="grade",
        )
        expected_samples = scheme.total_allocation(
            {g: len(ids) for g, ids in dataset.table.group_row_ids("grade").items()}
        )
        assert result.metadata["report"].sample_size == expected_samples

    def test_run_via_query_protocol(self, small_lending_club, constraints):
        from repro.db.predicate import UdfPredicate
        from repro.db.query import SelectQuery

        dataset = small_lending_club
        udf = dataset.make_udf("query_proto")
        query = SelectQuery(
            table=dataset.table.name,
            predicate=UdfPredicate(udf),
            alpha=0.8, beta=0.8, rho=0.8,
            correlated_column="grade",
        )
        result = IntelSample(random_state=6).run(dataset.table, query, CostLedger())
        assert len(result.row_ids) > 0

    def test_multi_udf_query_rejected(self, small_lending_club):
        from repro.db.predicate import AndPredicate, UdfPredicate
        from repro.db.query import SelectQuery

        dataset = small_lending_club
        query = SelectQuery(
            table=dataset.table.name,
            predicate=AndPredicate(
                [UdfPredicate(dataset.make_udf("u1")), UdfPredicate(dataset.make_udf("u2"))]
            ),
            alpha=0.8, beta=0.8, rho=0.8,
        )
        with pytest.raises(ValueError):
            IntelSample(random_state=0).run(dataset.table, query, CostLedger())


class TestOptimalOracle:
    def test_oracle_cheaper_than_intel_sample(self, small_lending_club, constraints):
        dataset = small_lending_club
        oracle_ledger = CostLedger()
        OptimalOracle(random_state=1).answer(
            dataset.table, dataset.make_udf("oracle"), constraints, oracle_ledger,
            correlated_column="grade",
        )
        intel_ledger = CostLedger()
        IntelSample(random_state=1).answer(
            dataset.table, dataset.make_udf("intel_vs"), constraints, intel_ledger,
            correlated_column="grade",
        )
        assert oracle_ledger.total_cost <= intel_ledger.total_cost

    def test_oracle_meets_constraints_most_of_the_time(self, small_lending_club, constraints):
        dataset = small_lending_club
        satisfied = 0
        for seed in range(5):
            ledger = CostLedger()
            result = OptimalOracle(random_state=seed).answer(
                dataset.table, dataset.make_udf(f"oracle_{seed}"), constraints, ledger,
                correlated_column="grade",
            )
            quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
            if quality.satisfies(constraints.alpha, constraints.beta):
                satisfied += 1
        assert satisfied >= 4

    def test_oracle_requires_column(self, small_lending_club, constraints):
        dataset = small_lending_club
        with pytest.raises(ValueError):
            OptimalOracle().answer(
                dataset.table, dataset.make_udf("nocol"), constraints, CostLedger()
            )


class TestAdaptiveIntelSample:
    def test_adaptive_runs_and_reports_rounds(self, small_lending_club, constraints):
        dataset = small_lending_club
        ledger = CostLedger()
        result = AdaptiveIntelSample("grade", random_state=0).answer(
            dataset.table, dataset.make_udf("adaptive"), constraints, ledger
        )
        report = result.metadata["report"]
        assert report.num_rounds >= 1
        assert report.chosen_num in [round.num for round in report.rounds]
        assert ledger.evaluated_count < dataset.num_rows

    def test_adaptive_quality_reasonable(self, small_lending_club, constraints):
        dataset = small_lending_club
        result = AdaptiveIntelSample("grade", random_state=1).answer(
            dataset.table, dataset.make_udf("adaptive_q"), constraints, CostLedger()
        )
        quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
        assert quality.precision >= 0.7
        assert quality.recall >= 0.7

    def test_custom_schedule_and_patience(self, small_lending_club, constraints):
        dataset = small_lending_club
        strategy = AdaptiveIntelSample(
            "grade", num_schedule=[0.5, 1.0, 2.0], patience=0, random_state=2
        )
        result = strategy.answer(
            dataset.table, dataset.make_udf("adaptive_sched"), constraints, CostLedger()
        )
        assert result.metadata["report"].num_rounds <= 3
