"""Tests for the estimated-selectivity convex programs (Sections 3.3 / 4.2)."""

import math

import pytest

from repro.core.bigreedy import solve_bigreedy
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.estimated import solve_estimated_selectivity
from repro.core.groups import GroupStatistics, SelectivityModel
from repro.core.sampling_program import solve_from_model, solve_with_samples
from repro.db.index import GroupIndex
from repro.db.udf import CostLedger
from repro.sampling.sampler import GroupSampler
from repro.stats.chebyshev import chebyshev_deviation_factor


@pytest.fixture
def estimated_model():
    """Three groups with sampling-based estimates (moderate uncertainty)."""
    return SelectivityModel(
        [
            GroupStatistics(key=1, size=1000, selectivity=0.9, variance=0.001,
                            sampled=50, sampled_positives=45),
            GroupStatistics(key=2, size=1000, selectivity=0.5, variance=0.002,
                            sampled=50, sampled_positives=25),
            GroupStatistics(key=3, size=1000, selectivity=0.1, variance=0.001,
                            sampled=50, sampled_positives=5),
        ]
    )


def chebyshev_constraint_values(model, plan, constraints):
    """LHS minus RHS of the independent-groups precision and recall constraints."""
    alpha, beta = constraints.alpha, constraints.beta
    e_rho = chebyshev_deviation_factor(constraints.rho)
    precision_expect = 0.0
    precision_var = 0.0
    recall_expect = 0.0
    recall_var = 0.0
    total_correct = 0.0
    for group in model:
        decision = plan.decision(group.key)
        r, e = decision.retrieve_probability, decision.evaluate_probability
        rem = group.remaining
        precision_expect += group.sampled_positives * (1 - alpha)
        precision_expect += (1 - alpha) * rem * group.selectivity * r
        precision_expect -= alpha * rem * (1 - group.selectivity) * (r - e)
        precision_var += rem**2 * group.variance * (r - alpha * e) ** 2 + 0.25 * rem
        recall_expect += group.sampled_positives + rem * group.selectivity * r
        recall_var += rem**2 * group.variance * (r - beta) ** 2 + 0.25 * rem
        total_correct += group.sampled_positives + rem * group.selectivity
    recall_expect -= beta * total_correct
    return (
        precision_expect - e_rho * math.sqrt(precision_var),
        recall_expect - e_rho * math.sqrt(recall_var),
    )


class TestIndependentProgram:
    def test_constraints_satisfied(self, estimated_model, default_constraints):
        solution = solve_estimated_selectivity(
            estimated_model, default_constraints, independent=True
        )
        precision_slack, recall_slack = chebyshev_constraint_values(
            estimated_model, solution.plan, default_constraints
        )
        assert precision_slack >= -1.0  # small numerical slack on ~1000-tuple scale
        assert recall_slack >= -1.0

    def test_cheaper_than_unknown_correlations(self, estimated_model, default_constraints):
        independent = solve_estimated_selectivity(
            estimated_model, default_constraints, independent=True
        )
        unknown = solve_estimated_selectivity(
            estimated_model, default_constraints, independent=False
        )
        # Quadrature deviations are never larger than summed deviations, so the
        # independent program can only be cheaper (or equal).
        assert independent.expected_cost <= unknown.expected_cost + 1e-6

    def test_more_expensive_than_perfect_selectivities(self, estimated_model, default_constraints):
        exact_model = SelectivityModel.from_selectivities(
            sizes={g.key: g.remaining for g in estimated_model},
            selectivities={g.key: g.selectivity for g in estimated_model},
        )
        estimated = solve_estimated_selectivity(
            estimated_model, default_constraints, independent=True
        )
        exact = solve_bigreedy(exact_model, default_constraints)
        assert estimated.expected_cost >= exact.expected_cost - 1e-6

    def test_high_selectivity_group_returned_without_evaluation(
        self, estimated_model, default_constraints
    ):
        solution = solve_estimated_selectivity(
            estimated_model, default_constraints, independent=True
        )
        decision = solution.plan.decision(1)
        assert decision.retrieve_probability > 0.9
        assert decision.evaluate_probability < 0.5

    def test_browsing_scenario(self, estimated_model):
        solution = solve_estimated_selectivity(
            estimated_model, QueryConstraints(1.0, 0.8, 0.8), independent=True
        )
        for key, decision in solution.plan:
            assert decision.evaluate_probability == pytest.approx(
                decision.retrieve_probability, abs=1e-6
            )

    def test_cost_grows_with_uncertainty(self, default_constraints):
        def model_with_variance(variance):
            return SelectivityModel(
                [
                    GroupStatistics(key=k, size=1000, selectivity=s, variance=variance)
                    for k, s in ((1, 0.9), (2, 0.5), (3, 0.1))
                ]
            )

        low = solve_estimated_selectivity(
            model_with_variance(1e-4), default_constraints, independent=True
        )
        high = solve_estimated_selectivity(
            model_with_variance(2e-2), default_constraints, independent=True
        )
        assert high.expected_cost >= low.expected_cost - 1e-6

    def test_empty_model(self, default_constraints):
        solution = solve_estimated_selectivity(
            SelectivityModel([]), default_constraints, independent=True
        )
        assert solution.expected_cost == 0.0


class TestUnknownCorrelationsProgram:
    def test_constraints_satisfied_linearly(self, estimated_model, default_constraints):
        solution = solve_estimated_selectivity(
            estimated_model, default_constraints, independent=False
        )
        # The linear (unknown correlations) program upper-bounds deviations by
        # their sum, so its solution also satisfies the quadrature version.
        precision_slack, recall_slack = chebyshev_constraint_values(
            estimated_model, solution.plan, default_constraints
        )
        assert precision_slack >= -1.0
        assert recall_slack >= -1.0

    def test_plan_probabilities_valid(self, estimated_model, default_constraints):
        solution = solve_estimated_selectivity(
            estimated_model, default_constraints, independent=False
        )
        for key, decision in solution.plan:
            assert 0.0 <= decision.evaluate_probability <= decision.retrieve_probability <= 1.0

    def test_empty_model(self, default_constraints):
        solution = solve_estimated_selectivity(
            SelectivityModel([]), default_constraints, independent=False
        )
        assert solution.expected_cost == 0.0


class TestSamplingProgram:
    def test_solution_from_samples(self, toy_table, toy_index, toy_udf):
        ledger = CostLedger()
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 2, 2: 2, 3: 2}, ledger
        )
        solution = solve_with_samples(
            toy_index, outcome, QueryConstraints(0.5, 0.5, 0.5), CostModel()
        )
        assert solution.sunk_sampling_cost == pytest.approx(6 * 4.0)
        assert solution.expected_total_cost >= solution.expected_execution_cost

    def test_solve_from_model_equivalent(self, estimated_model, default_constraints):
        direct = solve_from_model(estimated_model, default_constraints)
        assert direct.sunk_sampling_cost == pytest.approx(150 * 4.0)
        assert direct.plan is not None

    def test_fully_sampled_table_costs_nothing_more(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 4, 2: 3, 3: 5}, CostLedger()
        )
        solution = solve_with_samples(
            toy_index, outcome, QueryConstraints(0.5, 0.5, 0.5), CostModel()
        )
        assert solution.expected_execution_cost == pytest.approx(0.0, abs=1e-6)
