"""Tests for correlated-column selection and the virtual column (Section 4.4)."""

import pytest

from repro.core.column_selection import (
    LabeledSample,
    build_virtual_column,
    candidate_correlated_columns,
    draw_labeled_sample,
    estimate_column_cost,
    select_correlated_column,
)
from repro.core.constraints import CostModel, QueryConstraints
from repro.db.index import GroupIndex
from repro.db.udf import CostLedger


@pytest.fixture
def labeled_sample(small_lending_club):
    table = small_lending_club.table
    udf = small_lending_club.make_udf("label_sample")
    ledger = CostLedger()
    return draw_labeled_sample(
        table, udf, ledger, fraction=0.1, minimum_size=100, random_state=7
    ), ledger


class TestLabeledSample:
    def test_sampling_charges_costs(self, small_lending_club):
        table = small_lending_club.table
        udf = small_lending_club.make_udf("charge")
        ledger = CostLedger()
        sample = draw_labeled_sample(table, udf, ledger, fraction=0.05, random_state=1)
        assert sample.size == ledger.evaluated_count == ledger.retrieved_count
        assert sample.size >= 50

    def test_minimum_size_enforced(self, small_lending_club):
        table = small_lending_club.table
        udf = small_lending_club.make_udf("minimum")
        sample = draw_labeled_sample(
            table, udf, CostLedger(), fraction=0.0001, minimum_size=30, random_state=1
        )
        assert sample.size == 30

    def test_invalid_fraction_rejected(self, small_lending_club):
        with pytest.raises(ValueError):
            draw_labeled_sample(
                small_lending_club.table, small_lending_club.make_udf("bad"),
                CostLedger(), fraction=0.0,
            )

    def test_positives_subset_of_rows(self, labeled_sample):
        sample, _ = labeled_sample
        assert set(sample.positives) <= set(sample.row_ids)

    def test_to_sample_outcome_partitions_by_group(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        index = GroupIndex(small_lending_club.table, "grade")
        outcome = sample.to_sample_outcome(index)
        assert outcome.total_sampled == sample.size
        assert outcome.total_positives == len(sample.positives)


class TestCandidateColumns:
    def test_candidates_exclude_wide_and_excluded_columns(self, small_lending_club):
        candidates = candidate_correlated_columns(
            small_lending_club.table, labeled_size=400, exclude_columns=("record_id",)
        )
        assert "grade" in candidates
        assert "record_id" not in candidates
        assert "income" not in candidates  # numeric, not categorical

    def test_cap_relaxed_when_nothing_qualifies(self, small_lending_club):
        # With a labelled size of 1 the sqrt cap would be 1; the floor of 10
        # still lets the real columns through.
        candidates = candidate_correlated_columns(
            small_lending_club.table, labeled_size=1, exclude_columns=("record_id",)
        )
        assert "grade" in candidates


class TestColumnCostEstimation:
    def test_correlated_column_cheaper_than_noise(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        grade_cost = estimate_column_cost(
            small_lending_club.table, "grade", sample, constraints
        )
        noise_cost = estimate_column_cost(
            small_lending_club.table, "noise_1", sample, constraints
        )
        assert grade_cost < noise_cost

    def test_selection_picks_the_grade_column(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        result = select_correlated_column(
            small_lending_club.table,
            sample,
            QueryConstraints(0.8, 0.8, 0.8),
            CostModel(),
            exclude_columns=("record_id",),
        )
        assert result.best_column in ("grade", "grade_band")
        assert result.estimated_costs[result.best_column] == min(
            result.estimated_costs.values()
        )

    def test_explicit_candidates_respected(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        result = select_correlated_column(
            small_lending_club.table,
            sample,
            QueryConstraints(0.8, 0.8, 0.8),
            candidate_columns=["noise_1", "noise_2"],
        )
        assert result.best_column in ("noise_1", "noise_2")

    def test_no_candidates_raises(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        with pytest.raises(ValueError):
            select_correlated_column(
                small_lending_club.table,
                sample,
                QueryConstraints(0.8, 0.8, 0.8),
                candidate_columns=[],
            )


class TestVirtualColumn:
    def test_virtual_column_added_to_table(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        result = build_virtual_column(
            small_lending_club.table, sample, num_buckets=8,
            exclude_columns=("record_id",), random_state=3,
        )
        assert result.column_name in result.table.schema.column_names
        assert result.table.num_rows == small_lending_club.table.num_rows
        assert len(result.scores) == small_lending_club.table.num_rows

    def test_buckets_are_correlated_with_the_label(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        result = build_virtual_column(
            small_lending_club.table, sample, num_buckets=5,
            exclude_columns=("record_id",), random_state=3,
        )
        labels = small_lending_club.table.column_values(
            small_lending_club.label_column, allow_hidden=True
        )
        buckets = result.table.column_values(result.column_name)
        by_bucket = {}
        for bucket, label in zip(buckets, labels):
            by_bucket.setdefault(bucket, []).append(bool(label))
        selectivities = {b: sum(v) / len(v) for b, v in by_bucket.items() if len(v) > 20}
        # Spread between best and worst bucket shows the virtual column carries signal.
        assert max(selectivities.values()) - min(selectivities.values()) > 0.15

    def test_empty_labeled_sample_rejected(self, small_lending_club):
        with pytest.raises(ValueError):
            build_virtual_column(small_lending_club.table, LabeledSample())

    def test_original_table_untouched(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        build_virtual_column(
            small_lending_club.table, sample, exclude_columns=("record_id",)
        )
        assert "udf_score_bucket" not in small_lending_club.table.schema.column_names
