"""Tests for correlated-column selection and the virtual column (Section 4.4)."""

import pytest

from repro.core.column_selection import (
    LabeledSample,
    build_virtual_column,
    candidate_correlated_columns,
    draw_labeled_sample,
    estimate_column_cost,
    select_correlated_column,
    top_up_labeled_sample,
)
from repro.core.constraints import CostModel, QueryConstraints
from repro.db.index import GroupIndex
from repro.db.udf import CostLedger


@pytest.fixture
def labeled_sample(small_lending_club):
    table = small_lending_club.table
    udf = small_lending_club.make_udf("label_sample")
    ledger = CostLedger()
    return draw_labeled_sample(
        table, udf, ledger, fraction=0.1, minimum_size=100, random_state=7
    ), ledger


class TestLabeledSample:
    def test_sampling_charges_costs(self, small_lending_club):
        table = small_lending_club.table
        udf = small_lending_club.make_udf("charge")
        ledger = CostLedger()
        sample = draw_labeled_sample(table, udf, ledger, fraction=0.05, random_state=1)
        assert sample.size == ledger.evaluated_count == ledger.retrieved_count
        assert sample.size >= 50

    def test_minimum_size_enforced(self, small_lending_club):
        table = small_lending_club.table
        udf = small_lending_club.make_udf("minimum")
        sample = draw_labeled_sample(
            table, udf, CostLedger(), fraction=0.0001, minimum_size=30, random_state=1
        )
        assert sample.size == 30

    def test_invalid_fraction_rejected(self, small_lending_club):
        with pytest.raises(ValueError):
            draw_labeled_sample(
                small_lending_club.table, small_lending_club.make_udf("bad"),
                CostLedger(), fraction=0.0,
            )

    def test_positives_subset_of_rows(self, labeled_sample):
        sample, _ = labeled_sample
        assert set(sample.positives) <= set(sample.row_ids)

    def test_to_sample_outcome_partitions_by_group(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        index = GroupIndex(small_lending_club.table, "grade")
        outcome = sample.to_sample_outcome(index)
        assert outcome.total_sampled == sample.size
        assert outcome.total_positives == len(sample.positives)


class TestCandidateColumns:
    def test_candidates_exclude_wide_and_excluded_columns(self, small_lending_club):
        candidates = candidate_correlated_columns(
            small_lending_club.table, labeled_size=400, exclude_columns=("record_id",)
        )
        assert "grade" in candidates
        assert "record_id" not in candidates
        assert "income" not in candidates  # numeric, not categorical

    def test_cap_relaxed_when_nothing_qualifies(self, small_lending_club):
        # With a labelled size of 1 the sqrt cap would be 1; the floor of 10
        # still lets the real columns through.
        candidates = candidate_correlated_columns(
            small_lending_club.table, labeled_size=1, exclude_columns=("record_id",)
        )
        assert "grade" in candidates


class TestColumnCostEstimation:
    def test_correlated_column_cheaper_than_noise(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        grade_cost = estimate_column_cost(
            small_lending_club.table, "grade", sample, constraints
        )
        noise_cost = estimate_column_cost(
            small_lending_club.table, "noise_1", sample, constraints
        )
        assert grade_cost < noise_cost

    def test_selection_picks_the_grade_column(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        result = select_correlated_column(
            small_lending_club.table,
            sample,
            QueryConstraints(0.8, 0.8, 0.8),
            CostModel(),
            exclude_columns=("record_id",),
        )
        assert result.best_column in ("grade", "grade_band")
        assert result.estimated_costs[result.best_column] == min(
            result.estimated_costs.values()
        )

    def test_explicit_candidates_respected(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        result = select_correlated_column(
            small_lending_club.table,
            sample,
            QueryConstraints(0.8, 0.8, 0.8),
            candidate_columns=["noise_1", "noise_2"],
        )
        assert result.best_column in ("noise_1", "noise_2")

    def test_no_candidates_raises(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        with pytest.raises(ValueError):
            select_correlated_column(
                small_lending_club.table,
                sample,
                QueryConstraints(0.8, 0.8, 0.8),
                candidate_columns=[],
            )


class TestVirtualColumn:
    def test_virtual_column_added_to_table(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        result = build_virtual_column(
            small_lending_club.table, sample, num_buckets=8,
            exclude_columns=("record_id",), random_state=3,
        )
        assert result.column_name in result.table.schema.column_names
        assert result.table.num_rows == small_lending_club.table.num_rows
        assert len(result.scores) == small_lending_club.table.num_rows

    def test_buckets_are_correlated_with_the_label(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        result = build_virtual_column(
            small_lending_club.table, sample, num_buckets=5,
            exclude_columns=("record_id",), random_state=3,
        )
        labels = small_lending_club.table.column_values(
            small_lending_club.label_column, allow_hidden=True
        )
        buckets = result.table.column_values(result.column_name)
        by_bucket = {}
        for bucket, label in zip(buckets, labels):
            by_bucket.setdefault(bucket, []).append(bool(label))
        selectivities = {b: sum(v) / len(v) for b, v in by_bucket.items() if len(v) > 20}
        # Spread between best and worst bucket shows the virtual column carries signal.
        assert max(selectivities.values()) - min(selectivities.values()) > 0.15

    def test_empty_labeled_sample_rejected(self, small_lending_club):
        with pytest.raises(ValueError):
            build_virtual_column(small_lending_club.table, LabeledSample())

    def test_original_table_untouched(self, small_lending_club, labeled_sample):
        sample, _ = labeled_sample
        build_virtual_column(
            small_lending_club.table, sample, exclude_columns=("record_id",)
        )
        assert "udf_score_bucket" not in small_lending_club.table.schema.column_names


class TestReservoirTopUp:
    """Reservoir top-up of a labelled sample under incremental ingest."""

    def _table(self, n, seed=3):
        import numpy as np

        from repro.db.table import Table

        rng = np.random.default_rng(seed)
        return Table.from_columns(
            "res",
            {
                "grade": [f"g{int(v)}" for v in rng.integers(0, 4, n)],
                "is_good": [bool(v) for v in rng.random(n) < 0.4],
            },
            hidden_columns=["is_good"],
        )

    def _udf(self, tag):
        from repro.db.udf import UserDefinedFunction

        return UserDefinedFunction.from_label_column(f"res_{tag}", "is_good")

    def test_charges_only_newly_admitted_delta_rows(self):
        table = self._table(400)
        base = draw_labeled_sample(
            table, self._udf("base"), CostLedger(), fraction=0.1, random_state=5
        )
        table.append_columns(
            {"grade": ["g1"] * 40, "is_good": [True] * 40}
        )
        ledger = CostLedger()
        topped = top_up_labeled_sample(
            table,
            self._udf("top"),
            ledger,
            base,
            previous_rows=400,
            fraction=0.1,
            stream_seed=17,
        )
        admitted = [r for r in topped.outcomes if r not in base.outcomes]
        assert all(row_id >= 400 for row_id in admitted)
        assert ledger.evaluated_count == len(admitted)
        assert ledger.retrieved_count == len(admitted)
        assert ledger.evaluated_count <= 40
        assert topped.size == max(50, round(0.1 * 440))
        # survivors keep their already-paid labels verbatim
        for row_id, outcome in topped.outcomes.items():
            if row_id in base.outcomes:
                assert outcome == base.outcomes[row_id]

    def test_chunked_appends_bitwise_equal_one_big_append(self):
        from repro.db.table import Table

        full = self._table(600)
        grades = full.column_values("grade")
        labels = full.column_values("is_good", allow_hidden=True)

        def prefix(n):
            return Table.from_columns(
                "res",
                {"grade": grades[:n], "is_good": labels[:n]},
                hidden_columns=["is_good"],
            )

        base_sample = draw_labeled_sample(
            prefix(480), self._udf("c0"), CostLedger(), fraction=0.08,
            random_state=9,
        )
        one_shot = top_up_labeled_sample(
            full, self._udf("c1"), CostLedger(), base_sample,
            previous_rows=480, fraction=0.08, stream_seed=23,
        )
        chunked = base_sample
        for previous, now in ((480, 520), (520, 575), (575, 600)):
            chunked = top_up_labeled_sample(
                prefix(now), self._udf(f"c_{now}"), CostLedger(), chunked,
                previous_rows=previous, fraction=0.08, stream_seed=23,
            )
        assert one_shot.outcomes == chunked.outcomes

    def test_no_delta_returns_copy(self):
        table = self._table(100)
        base = draw_labeled_sample(
            table, self._udf("n0"), CostLedger(), fraction=0.5, random_state=1
        )
        ledger = CostLedger()
        same = top_up_labeled_sample(
            table, self._udf("n1"), ledger, base, previous_rows=100
        )
        assert same.outcomes == base.outcomes
        assert same is not base
        assert ledger.evaluated_count == 0

    def test_rejects_bad_previous_rows(self):
        table = self._table(10)
        with pytest.raises(ValueError):
            top_up_labeled_sample(
                table, self._udf("bad"), CostLedger(), LabeledSample(),
                previous_rows=11,
            )

    def test_target_tracks_growing_table(self):
        table = self._table(1000)
        base = draw_labeled_sample(
            table, self._udf("g0"), CostLedger(), fraction=0.1, random_state=2
        )
        assert base.size == 100
        table.append_columns(
            {"grade": ["g0"] * 500, "is_good": [False] * 500}
        )
        topped = top_up_labeled_sample(
            table, self._udf("g1"), CostLedger(), base,
            previous_rows=1000, fraction=0.1, stream_seed=4,
        )
        assert topped.size == 150  # 10% of 1500
        assert any(row_id >= 1000 for row_id in topped.outcomes)
