"""ProcessPoolBatchExecutor: bitwise parity, accounting, fallbacks.

The contract under test is the tentpole invariant: the process-pool path
produces *exactly* the serial path's results and counters — row ids, ledger
charges, per-group counts, UDF memo content and every UDF counter — because
coins are pure functions of (seed, group, position) and the parent replays
serial charging while folding.  These tests run real spawn workers (a shared
two-worker pool, reused across tests), so they also exercise the
shared-memory export/attach lifecycle end to end.
"""

import numpy as np
import pytest

from repro.core.parallel import ParallelBatchExecutor
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.core.procpool import ProcessPoolBatchExecutor
from repro.db.errors import BudgetExhaustedError
from repro.db.sharding import ShardedTable
from repro.db.shm import exported_segment_count, release_exports
from repro.db.table import Table
from repro.db.udf import CostLedger, RevealLabel, UserDefinedFunction
from repro.obs.metrics import MetricsRegistry, disable_metrics, enable_metrics
from repro.sampling.sampler import GroupSampler

WORKERS = 2


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Leak check: teardown must leave zero shm segments, memmaps or temp files."""
    from leakcheck import assert_no_leaked_resources

    yield
    assert_no_leaked_resources()


def _table(n=600, groups=5, seed=11, name="ptab"):
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        name,
        {
            "A": [f"a{int(v)}" for v in rng.integers(0, groups, n)],
            "f": [bool(v) for v in rng.random(n) < 0.45],
        },
        hidden_columns=["f"],
    )


def _sharded(n=600, shards=4, seed=11, name="ptab"):
    return ShardedTable.from_table(_table(n=n, seed=seed, name=name), num_shards=shards)


def _label_udf(name="pudf"):
    return UserDefinedFunction.from_label_column(name, "f")


def _func_udf(name="pyudf"):
    # No label_column attribute: forces the per-row python-callable path on
    # every backend (the workload processes exist for).
    return UserDefinedFunction(name, RevealLabel("f", True))


def _mixed_plan(index):
    regimes = [(0.0, 0.0), (1.0, 1.0), (0.6, 0.0), (1.0, 0.5), (0.7, 0.8)]
    decisions = {}
    for code, value in enumerate(index.values):
        retrieve, evaluate = regimes[code % len(regimes)]
        decisions[value] = GroupDecision(retrieve=retrieve, evaluate=retrieve * evaluate)
    return ExecutionPlan(decisions=decisions)


def _execute(table, executor_cls, udf, workers, seed=7, free_memoized=False,
             sample_outcome=None, ledger=None):
    index = table.group_index("A")
    plan = _mixed_plan(index)
    ledger = ledger if ledger is not None else CostLedger()
    executor = executor_cls(
        random_state=seed, max_workers=workers, free_memoized=free_memoized
    )
    result = executor.execute(
        table, index, udf, plan, ledger, sample_outcome=sample_outcome
    )
    return result, ledger


def _assert_parity(serial, serial_ledger, serial_udf, remote, remote_ledger, remote_udf):
    assert np.array_equal(
        np.asarray(serial.returned_row_ids), np.asarray(remote.returned_row_ids)
    )
    assert remote_ledger.retrieved_count == serial_ledger.retrieved_count
    assert remote_ledger.evaluated_count == serial_ledger.evaluated_count
    assert remote_udf.counter_snapshot() == serial_udf.counter_snapshot()
    assert remote_udf._cache == serial_udf._cache
    for key, counts in serial.group_counts.items():
        other = remote.group_counts[key]
        assert (
            counts.retrieved, counts.evaluated, counts.returned,
            counts.evaluated_correct,
        ) == (
            other.retrieved, other.evaluated, other.returned,
            other.evaluated_correct,
        )


class TestExecuteParity:
    def test_label_udf_bitwise_parity(self):
        table = _sharded()
        udf_a, udf_b = _label_udf(), _label_udf()
        serial, serial_ledger = _execute(table, ParallelBatchExecutor, udf_a, workers=1)
        remote, remote_ledger = _execute(
            table, ProcessPoolBatchExecutor, udf_b, workers=WORKERS
        )
        _assert_parity(serial, serial_ledger, udf_a, remote, remote_ledger, udf_b)

    def test_python_callable_udf_bitwise_parity(self):
        table = _sharded(name="pytab")
        udf_a, udf_b = _func_udf(), _func_udf()
        serial, serial_ledger = _execute(table, ParallelBatchExecutor, udf_a, workers=1)
        remote, remote_ledger = _execute(
            table, ProcessPoolBatchExecutor, udf_b, workers=WORKERS
        )
        _assert_parity(serial, serial_ledger, udf_a, remote, remote_ledger, udf_b)

    def test_sampled_rows_excluded_and_positives_free(self):
        table = _sharded(name="samptab")
        index = table.group_index("A")
        udf_a, udf_b = _label_udf("s_a"), _label_udf("s_b")
        outcome = GroupSampler(random_state=3).sample(
            table, index, udf_a, {value: 5 for value in index.values}, CostLedger()
        )
        # Mirror the sampler's memo warm-up on the comparison UDF so both
        # sides enter execution with identical caches.
        GroupSampler(random_state=3).sample(
            table, index, udf_b, {value: 5 for value in index.values}, CostLedger()
        )
        serial, serial_ledger = _execute(
            table, ParallelBatchExecutor, udf_a, workers=1, sample_outcome=outcome
        )
        remote, remote_ledger = _execute(
            table, ProcessPoolBatchExecutor, udf_b, workers=WORKERS,
            sample_outcome=outcome,
        )
        _assert_parity(serial, serial_ledger, udf_a, remote, remote_ledger, udf_b)

    def test_free_memoized_second_run_charges_identically(self):
        table = _sharded(name="memotab")
        udf_a, udf_b = _label_udf("m_a"), _label_udf("m_b")
        for run_seed in (7, 7, 13):
            serial, serial_ledger = _execute(
                table, ParallelBatchExecutor, udf_a, workers=1,
                seed=run_seed, free_memoized=True,
            )
            remote, remote_ledger = _execute(
                table, ProcessPoolBatchExecutor, udf_b, workers=WORKERS,
                seed=run_seed, free_memoized=True,
            )
            _assert_parity(serial, serial_ledger, udf_a, remote, remote_ledger, udf_b)
        # The repeated seed really was free the second time (memo merged back).
        _, second_ledger = _execute(
            table, ParallelBatchExecutor, _label_udf("m_c"), workers=1,
            seed=7, free_memoized=True,
        )
        assert second_ledger.evaluated_count > 0  # fresh UDF pays

    def test_budget_trips_at_the_same_boundary(self):
        table = _sharded(name="budtab")
        _, full_ledger = _execute(table, ParallelBatchExecutor, _label_udf(), workers=1)
        budget = full_ledger.total_cost / 2

        def run(executor_cls, udf, workers):
            ledger = CostLedger()
            ledger.set_budget(budget)
            with pytest.raises(BudgetExhaustedError):
                _execute(table, executor_cls, udf, workers=workers, ledger=ledger)
            return ledger

        serial_ledger = run(ParallelBatchExecutor, _label_udf(), 1)
        remote_ledger = run(ProcessPoolBatchExecutor, _label_udf(), WORKERS)
        assert remote_ledger.retrieved_count == serial_ledger.retrieved_count
        assert remote_ledger.evaluated_count == serial_ledger.evaluated_count


class TestEvaluateRowsFan:
    def test_bulk_fan_matches_serial_including_bulk_calls(self):
        table = _sharded(n=3000, shards=4, name="fantab")
        ids = np.arange(0, 3000, dtype=np.intp)
        udf_serial, udf_remote = _label_udf("f_a"), _label_udf("f_b")
        expected = udf_serial.evaluate_rows(table, ids)
        executor = ProcessPoolBatchExecutor(random_state=0, max_workers=WORKERS)
        got = executor.evaluate_rows(table, udf_remote, ids)
        assert np.array_equal(np.asarray(expected), np.asarray(got))
        # One bulk call, like serial — the thread path pays one per chunk.
        assert udf_remote.counter_snapshot() == udf_serial.counter_snapshot()
        assert udf_remote._cache == udf_serial._cache

    def test_partial_memoization_charges_only_pending(self):
        table = _sharded(n=3000, shards=4, name="pmtab")
        warm = np.arange(0, 1500, dtype=np.intp)
        ids = np.arange(0, 3000, dtype=np.intp)
        udf_serial, udf_remote = _label_udf("pm_a"), _label_udf("pm_b")
        udf_serial.evaluate_rows(table, warm)
        udf_remote.evaluate_rows(table, warm)
        expected = udf_serial.evaluate_rows(table, ids)
        executor = ProcessPoolBatchExecutor(random_state=0, max_workers=WORKERS)
        got = executor.evaluate_rows(table, udf_remote, ids)
        assert np.array_equal(np.asarray(expected), np.asarray(got))
        snap = udf_remote.counter_snapshot()
        assert snap == udf_serial.counter_snapshot()
        assert snap["cache_hits"] >= warm.size  # memo-answered rows kept cached values


class TestFallbacks:
    def _fallback_reasons(self, registry):
        reasons = []
        for key in registry.snapshot()["counters"]:
            if "repro_executor_fallbacks_total" in key and 'backend="process"' in key:
                reasons.append(str(key))
        return reasons

    def test_unpicklable_udf_falls_back_with_identical_results(self):
        registry = enable_metrics(MetricsRegistry())
        try:
            table = _sharded(name="lamtab")
            udf_serial = _label_udf("lam_a")
            udf_remote = UserDefinedFunction(
                "lam_b", lambda row: bool(row["f"])  # unpicklable on purpose
            )
            serial, serial_ledger = _execute(
                table, ParallelBatchExecutor, udf_serial, workers=1
            )
            remote, remote_ledger = _execute(
                table, ProcessPoolBatchExecutor, udf_remote, workers=WORKERS
            )
            assert np.array_equal(
                np.asarray(serial.returned_row_ids),
                np.asarray(remote.returned_row_ids),
            )
            assert remote_ledger.evaluated_count == serial_ledger.evaluated_count
            assert any(
                "unpicklable_udf" in key for key in self._fallback_reasons(registry)
            )
        finally:
            disable_metrics()

    def test_object_dtype_column_falls_back(self):
        registry = enable_metrics(MetricsRegistry())
        try:
            rng = np.random.default_rng(5)
            base = Table.from_columns(
                "objtab",
                {
                    "A": [f"a{int(v)}" for v in rng.integers(0, 4, 300)],
                    "blob": [object() for _ in range(300)],
                    "f": [bool(v) for v in rng.random(300) < 0.5],
                },
                hidden_columns=["f"],
            )
            table = ShardedTable.from_table(base, num_shards=3)
            udf_serial, udf_remote = _func_udf("obj_a"), _func_udf("obj_b")
            serial, serial_ledger = _execute(
                table, ParallelBatchExecutor, udf_serial, workers=1
            )
            remote, remote_ledger = _execute(
                table, ProcessPoolBatchExecutor, udf_remote, workers=WORKERS
            )
            assert np.array_equal(
                np.asarray(serial.returned_row_ids),
                np.asarray(remote.returned_row_ids),
            )
            assert remote_ledger.evaluated_count == serial_ledger.evaluated_count
            assert any(
                "unshareable_column" in key for key in self._fallback_reasons(registry)
            )
        finally:
            disable_metrics()

    def test_max_workers_one_never_exports(self):
        table = _sharded(name="onetab")
        before = exported_segment_count()
        _execute(table, ProcessPoolBatchExecutor, _label_udf(), workers=1)
        assert exported_segment_count() == before


class TestSharedMemoryLifecycle:
    def test_release_exports_frees_segments(self):
        table = _sharded(name="reltab")
        _execute(table, ProcessPoolBatchExecutor, _label_udf(), workers=WORKERS)
        before = exported_segment_count()
        assert before > 0
        released = release_exports(table)
        assert released >= 4  # one label-column block per shard
        assert exported_segment_count() == before - released
        assert release_exports(table) == 0  # idempotent
