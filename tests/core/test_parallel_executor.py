"""Tests for ParallelBatchExecutor: invariance, fan-out, accounting."""

import numpy as np
import pytest

from repro.core.constraints import QueryConstraints
from repro.core.parallel import ParallelBatchExecutor, default_max_workers
from repro.core.pipeline import IntelSample, OptimalOracle
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.db.errors import BudgetExhaustedError
from repro.db.sharding import ShardedTable
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.sampling.sampler import GroupSampler


def _table(n=400, groups=5, seed=11):
    rng = np.random.default_rng(seed)
    return Table.from_columns(
        "ptab",
        {
            "A": [f"a{int(v)}" for v in rng.integers(0, groups, n)],
            "f": [bool(v) for v in rng.random(n) < 0.45],
        },
        hidden_columns=["f"],
    )


def _udf(name="pudf"):
    return UserDefinedFunction.from_label_column(name, "f")


def _mixed_plan(index):
    """A plan exercising every decision regime across the groups."""
    regimes = [
        (0.0, 0.0),  # skipped group
        (1.0, 1.0),  # retrieve and evaluate everything
        (0.6, 0.0),  # probabilistic retrieval, no evaluation
        (1.0, 0.5),  # certain retrieval, probabilistic evaluation
        (0.7, 0.8),  # probabilistic both
    ]
    decisions = {}
    for code, value in enumerate(index.values):
        retrieve, evaluate = regimes[code % len(regimes)]
        decisions[value] = GroupDecision(
            retrieve=retrieve, evaluate=retrieve * evaluate
        )
    return ExecutionPlan(decisions=decisions)


def _execute(table, workers, seed=7, sample_outcome=None, free_memoized=False, udf=None):
    index = table.group_index("A")
    plan = _mixed_plan(index)
    ledger = CostLedger()
    executor = ParallelBatchExecutor(
        random_state=seed, max_workers=workers, free_memoized=free_memoized
    )
    result = executor.execute(
        table, index, udf or _udf(), plan, ledger, sample_outcome=sample_outcome
    )
    return result, ledger


class TestInvariance:
    def test_identical_across_shard_layouts(self):
        plain = _table()
        reference, ref_ledger = _execute(plain, workers=1)
        for shards in (1, 2, 3, 7):
            sharded = ShardedTable.from_table(plain, num_shards=shards)
            result, ledger = _execute(sharded, workers=1)
            assert np.array_equal(
                np.asarray(reference.returned_row_ids),
                np.asarray(result.returned_row_ids),
            ), f"row ids diverged at {shards} shards"
            assert ledger.evaluated_count == ref_ledger.evaluated_count
            assert ledger.retrieved_count == ref_ledger.retrieved_count

    def test_identical_across_worker_counts(self):
        sharded = ShardedTable.from_table(_table(), num_shards=4)
        reference, ref_ledger = _execute(sharded, workers=1)
        for workers in (2, 3, 8):
            result, ledger = _execute(sharded, workers=workers)
            assert np.array_equal(
                np.asarray(reference.returned_row_ids),
                np.asarray(result.returned_row_ids),
            )
            assert ledger.evaluated_count == ref_ledger.evaluated_count

    def test_group_counts_match_across_layouts(self):
        plain = _table()
        sharded = ShardedTable.from_table(plain, num_shards=3)
        reference, _ = _execute(plain, workers=1)
        result, _ = _execute(sharded, workers=2)
        for key, counts in reference.group_counts.items():
            other = result.group_counts[key]
            assert (
                counts.retrieved,
                counts.evaluated,
                counts.returned,
                counts.evaluated_correct,
            ) == (other.retrieved, other.evaluated, other.returned, other.evaluated_correct)

    def test_sampled_rows_are_excluded_and_positives_returned_free(self):
        plain = _table()
        index = plain.group_index("A")
        udf = _udf("sampler_udf")
        sampler = GroupSampler(random_state=3)
        allocation = {value: 5 for value in index.values}
        outcome = sampler.sample(plain, index, udf, allocation, CostLedger())
        sampled = set(outcome.sampled_row_ids())
        positives = set(outcome.positive_row_ids())

        reference, _ = _execute(plain, workers=1, sample_outcome=outcome)
        sharded = ShardedTable.from_table(plain, num_shards=4)
        result, _ = _execute(sharded, workers=2, sample_outcome=outcome)
        assert np.array_equal(
            np.asarray(reference.returned_row_ids),
            np.asarray(result.returned_row_ids),
        )
        returned = set(int(r) for r in result.returned_row_ids)
        assert positives <= returned
        # Sampled negatives can never re-enter through the probabilistic pass.
        assert not (sampled - positives) & returned

    def test_seed_changes_results(self):
        sharded = ShardedTable.from_table(_table(), num_shards=3)
        a, _ = _execute(sharded, workers=2, seed=1)
        b, _ = _execute(sharded, workers=2, seed=2)
        assert not np.array_equal(
            np.asarray(a.returned_row_ids), np.asarray(b.returned_row_ids)
        )


class TestPipelineParity:
    def test_intel_sample_sharded_equals_unsharded(self):
        plain = _table(n=600)
        sharded = ShardedTable.from_table(plain, num_shards=5)
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)

        outcomes = []
        for table in (plain, sharded):
            udf = _udf(f"pipeline_{table.__class__.__name__}")
            ledger = CostLedger()
            strategy = IntelSample(
                random_state=42,
                executor_factory=lambda rng: ParallelBatchExecutor(
                    rng, max_workers=2
                ),
            )
            result = strategy.answer(
                table, udf, constraints, ledger, correlated_column="A"
            )
            outcomes.append(
                (list(int(r) for r in result.row_ids), ledger.evaluated_count,
                 ledger.retrieved_count, udf.call_count)
            )
        assert outcomes[0] == outcomes[1]

    def test_optimal_oracle_sharded_equals_unsharded(self):
        plain = _table(n=500)
        sharded = ShardedTable.from_table(plain, num_shards=4)
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)

        outcomes = []
        for table in (plain, sharded):
            udf = _udf(f"oracle_{table.__class__.__name__}")
            ledger = CostLedger()
            oracle = OptimalOracle(
                random_state=13,
                executor_factory=lambda rng: ParallelBatchExecutor(
                    rng, max_workers=2
                ),
            )
            result = oracle.answer(
                table, udf, constraints, ledger, correlated_column="A"
            )
            outcomes.append(
                (list(int(r) for r in result.row_ids), ledger.evaluated_count)
            )
        assert outcomes[0] == outcomes[1]
        # the oracle peek must stay free and traceless
        assert outcomes[0][1] > 0


class TestBulkEvaluationFanOut:
    def test_matches_serial_outcomes_and_counters(self):
        plain = _table(n=300)
        sharded = ShardedTable.from_table(plain, num_shards=3)
        ids = np.random.default_rng(5).permutation(300)[:200]

        serial_udf = _udf("bulk_serial")
        serial = serial_udf.evaluate_rows(plain, ids)

        parallel_udf = _udf("bulk_parallel")
        executor = ParallelBatchExecutor(max_workers=3)
        # force the fan even below the size threshold
        executor_eval = executor.bulk_evaluator(parallel_udf)
        import repro.core.parallel as parallel_module

        original = parallel_module._MIN_PARALLEL_EVAL_ROWS
        parallel_module._MIN_PARALLEL_EVAL_ROWS = 1
        try:
            fanned = executor_eval(sharded, ids)
        finally:
            parallel_module._MIN_PARALLEL_EVAL_ROWS = original
        assert np.array_equal(serial, fanned)
        assert parallel_udf.call_count == serial_udf.call_count
        assert parallel_udf.cache_misses == serial_udf.cache_misses

    def test_monolithic_table_degrades_to_single_call(self):
        plain = _table(n=100)
        udf = _udf("bulk_mono")
        executor = ParallelBatchExecutor(max_workers=4)
        outcomes = executor.evaluate_rows(plain, udf, np.arange(100))
        assert outcomes.size == 100
        assert udf.bulk_calls == 1


class TestAccounting:
    def test_budget_exhaustion_raises_before_udf_work(self):
        sharded = ShardedTable.from_table(_table(), num_shards=3)
        udf = _udf("budgeted")
        index = sharded.group_index("A")
        plan = _mixed_plan(index)
        ledger = CostLedger()
        ledger.set_budget(1.0)  # cannot afford even one span's retrievals
        executor = ParallelBatchExecutor(random_state=0, max_workers=2)
        with pytest.raises(BudgetExhaustedError):
            executor.execute(sharded, index, udf, plan, ledger)
        assert udf.call_count == 0

    def test_free_memoized_does_not_recharge_known_rows(self):
        plain = _table()
        udf = _udf("memoized")
        # pre-pay every row so serving accounting has nothing left to charge
        udf.evaluate_rows(plain, np.arange(plain.num_rows))
        sharded = ShardedTable.from_table(plain, num_shards=3)
        result, ledger = _execute(
            sharded, workers=2, free_memoized=True, udf=udf
        )
        assert ledger.evaluated_count == 0
        assert ledger.retrieved_count > 0
        assert len(result.returned_row_ids) > 0

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ParallelBatchExecutor(max_workers=0)
        assert default_max_workers() >= 1
