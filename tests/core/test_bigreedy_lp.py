"""Tests for the perfect-selectivity LP and the BiGreedy algorithm (Section 3.2)."""

import pytest

from repro.core.bigreedy import bigreedy_feasibility_conditions, solve_bigreedy
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.hoeffding_lp import (
    compute_margins,
    precision_headroom,
    recall_target,
    solve_perfect_selectivity_lp,
)
from repro.solvers.linear import InfeasibleProblemError


def constraint_values(model, plan, alpha):
    """LHS of the precision and recall expectations for a plan."""
    precision_lhs = 0.0
    recall_lhs = 0.0
    for group in model:
        decision = plan.decision(group.key)
        r, e = decision.retrieve_probability, decision.evaluate_probability
        precision_lhs += group.remaining * group.selectivity * (1.0 - alpha) * r
        precision_lhs -= group.remaining * (1.0 - group.selectivity) * alpha * (r - e)
        recall_lhs += group.remaining * group.selectivity * r
    return precision_lhs, recall_lhs


class TestMargins:
    def test_margins_positive_for_probabilistic_guarantee(self, selectivity_model):
        margins = compute_margins(selectivity_model, QueryConstraints(0.8, 0.8, 0.8))
        assert margins.precision_margin > 0.0
        assert margins.recall_margin > 0.0

    def test_recall_margin_zero_when_beta_one(self, selectivity_model):
        margins = compute_margins(selectivity_model, QueryConstraints(0.8, 1.0, 0.8))
        assert margins.recall_margin == 0.0

    def test_precision_margin_zero_when_alpha_trivial(self, selectivity_model):
        margins = compute_margins(selectivity_model, QueryConstraints(0.0, 0.8, 0.8))
        assert margins.precision_margin == 0.0

    def test_recall_target_formula(self, selectivity_model):
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        margins = compute_margins(selectivity_model, constraints)
        target = recall_target(selectivity_model, constraints, margins.recall_margin)
        assert target == pytest.approx(0.8 * 1500 + margins.recall_margin)


class TestBiGreedy:
    def test_constraints_satisfied_with_margins(self, selectivity_model):
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        solution = solve_bigreedy(selectivity_model, constraints)
        precision_lhs, recall_lhs = constraint_values(
            selectivity_model, solution.plan, constraints.alpha
        )
        assert precision_lhs >= solution.margins.precision_margin - 1e-6
        assert recall_lhs >= recall_target(
            selectivity_model, constraints, solution.margins.recall_margin
        ) - 1e-6

    def test_retrieves_high_selectivity_groups_first(self, selectivity_model):
        solution = solve_bigreedy(selectivity_model, QueryConstraints(0.8, 0.8, 0.8))
        plan = solution.plan
        assert plan.decision(1).retrieve_probability >= plan.decision(2).retrieve_probability
        assert plan.decision(2).retrieve_probability >= plan.decision(3).retrieve_probability

    def test_evaluates_low_selectivity_retrieved_groups_first(self, selectivity_model):
        solution = solve_bigreedy(selectivity_model, QueryConstraints(0.9, 0.9, 0.8))
        plan = solution.plan
        # Among retrieved groups, the lower-selectivity one should carry the
        # larger (conditional) evaluation probability.
        assert (
            plan.decision(2).conditional_evaluate_probability
            >= plan.decision(1).conditional_evaluate_probability - 1e-9
        )

    def test_group_one_not_evaluated_in_paper_example(self, selectivity_model):
        # Selectivity 0.9 > alpha 0.8: returning it without evaluation is fine.
        solution = solve_bigreedy(selectivity_model, QueryConstraints(0.8, 0.8, 0.8))
        assert solution.plan.decision(1).evaluate_probability == pytest.approx(0.0, abs=1e-9)

    def test_browsing_scenario_forces_evaluation(self, selectivity_model):
        solution = solve_bigreedy(selectivity_model, QueryConstraints(1.0, 0.8, 0.8))
        for key, decision in solution.plan:
            assert decision.evaluate_probability == pytest.approx(
                decision.retrieve_probability
            )

    def test_beta_one_retrieves_everything_with_positive_selectivity(self, selectivity_model):
        solution = solve_bigreedy(selectivity_model, QueryConstraints(0.8, 1.0, 0.8))
        for group in selectivity_model:
            if group.selectivity > 0:
                assert solution.plan.decision(group.key).retrieve_probability == pytest.approx(1.0)

    def test_infeasible_when_groups_too_small(self):
        # One group of 3 tuples cannot absorb the Hoeffding margin for rho=0.99.
        model = SelectivityModel.from_selectivities(
            sizes={"a": 3}, selectivities={"a": 0.5}
        )
        with pytest.raises(InfeasibleProblemError):
            solve_bigreedy(model, QueryConstraints(0.8, 0.8, 0.99))

    def test_cost_decreases_with_looser_constraints(self, selectivity_model):
        tight = solve_bigreedy(selectivity_model, QueryConstraints(0.9, 0.9, 0.8))
        loose = solve_bigreedy(selectivity_model, QueryConstraints(0.6, 0.6, 0.8))
        assert loose.expected_cost <= tight.expected_cost + 1e-9

    def test_empty_model(self):
        solution = solve_bigreedy(SelectivityModel([]), QueryConstraints(0.8, 0.8, 0.8))
        assert solution.expected_cost == 0.0

    def test_feasibility_conditions_hold_for_paper_example(self, selectivity_model):
        assert bigreedy_feasibility_conditions(
            selectivity_model, QueryConstraints(0.8, 0.8, 0.8)
        )

    def test_feasibility_conditions_fail_for_tiny_model(self):
        model = SelectivityModel.from_selectivities(sizes={"a": 3}, selectivities={"a": 0.5})
        assert not bigreedy_feasibility_conditions(model, QueryConstraints(0.8, 0.8, 0.99))

    def test_browsing_mode_evaluates_fractional_marginal_group(self):
        """Regression: E_a == R_a must cover fractional phase-1 mass too.

        ``bigreedy_feasibility_conditions`` calls precision "trivially ok"
        for ``alpha >= 1 - 1e-12``, which is only sound because the browsing
        branch evaluates *everything* it retrieves — including the marginal
        group a loose recall bound leaves fractional.
        """
        model = SelectivityModel.from_selectivities(
            sizes={"hi": 2000, "lo": 2000}, selectivities={"hi": 0.9, "lo": 0.2}
        )
        constraints = QueryConstraints(alpha=1.0, beta=0.4, rho=0.8)
        assert bigreedy_feasibility_conditions(model, constraints)
        solution = solve_bigreedy(model, constraints)
        fractional = [
            decision
            for _key, decision in solution.plan
            if 0.0 < decision.retrieve_probability < 1.0
        ]
        assert fractional, "the loose recall bound should leave a fractional group"
        for _key, decision in solution.plan:
            assert decision.evaluate == decision.retrieve

    def test_repair_retrieves_beyond_the_recall_target(self):
        """Regression for the ROADMAP gap: the eval-only phase 2 declared
        this loose-recall problem infeasible (evaluating every retrieved
        tuple cannot absorb the precision margin) although retrieving more
        of the high-selectivity group makes it feasible — and ~cheap."""
        model = SelectivityModel.from_selectivities(
            sizes={"rich": 5000, "junk": 5000},
            selectivities={"rich": 0.95, "junk": 0.01},
        )
        constraints = QueryConstraints(alpha=0.9, beta=0.05, rho=0.8)
        solution = solve_bigreedy(model, constraints)
        lp = solve_perfect_selectivity_lp(model, constraints)
        assert solution.expected_cost == pytest.approx(lp.expected_cost, rel=1e-6)
        precision_lhs, recall_lhs = constraint_values(
            model, solution.plan, constraints.alpha
        )
        assert precision_lhs >= solution.margins.precision_margin - 1e-6
        assert recall_lhs >= recall_target(
            model, constraints, solution.margins.recall_margin
        ) - 1e-6


class TestPrecisionHeadroom:
    def test_channel_headrooms_for_paper_example(self, selectivity_model):
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        headroom = precision_headroom(selectivity_model, constraints)
        # Only group 1 (s = 0.9) clears alpha = 0.8 for the o_r channel; the
        # o_r + o_e ceiling counts every group's (1 - alpha)-scaled positives.
        assert headroom.retrieval == pytest.approx(1000 * (0.9 - 0.8))
        assert headroom.total == pytest.approx(1000 * (0.9 + 0.5 + 0.1) * 0.2)
        assert headroom.total >= headroom.retrieval

    def test_feasibility_condition_matches_retrieval_channel(self, selectivity_model):
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        margins = compute_margins(selectivity_model, constraints)
        headroom = precision_headroom(selectivity_model, constraints)
        assert bigreedy_feasibility_conditions(selectivity_model, constraints) == (
            margins.precision_margin < headroom.retrieval
        )


class TestLpEquivalence:
    def test_bigreedy_matches_scipy_lp_cost(self, selectivity_model):
        """BiGreedy solves the same LP the scipy solver does (Theorem 3.8)."""
        for alpha, beta in [(0.8, 0.8), (0.9, 0.7), (0.7, 0.9), (0.6, 0.95)]:
            constraints = QueryConstraints(alpha, beta, 0.8)
            greedy = solve_bigreedy(selectivity_model, constraints)
            lp = solve_perfect_selectivity_lp(selectivity_model, constraints)
            assert greedy.expected_cost == pytest.approx(lp.expected_cost, rel=1e-4)

    def test_lp_constraints_satisfied(self, selectivity_model):
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        lp = solve_perfect_selectivity_lp(selectivity_model, constraints)
        precision_lhs, recall_lhs = constraint_values(
            selectivity_model, lp.plan, constraints.alpha
        )
        assert precision_lhs >= lp.margins.precision_margin - 1e-6
        assert recall_lhs >= recall_target(
            selectivity_model, constraints, lp.margins.recall_margin
        ) - 1e-6

    def test_lp_handles_browsing_scenario(self, selectivity_model):
        lp = solve_perfect_selectivity_lp(selectivity_model, QueryConstraints(1.0, 0.8, 0.8))
        for key, decision in lp.plan:
            assert decision.evaluate_probability == pytest.approx(
                decision.retrieve_probability, abs=1e-6
            )

    def test_lp_empty_model(self):
        lp = solve_perfect_selectivity_lp(SelectivityModel([]), QueryConstraints(0.8, 0.8, 0.8))
        assert lp.expected_cost == 0.0

    def test_costs_scale_with_group_sizes(self):
        small = SelectivityModel.from_selectivities(
            sizes={1: 100, 2: 100, 3: 100}, selectivities={1: 0.9, 2: 0.5, 3: 0.1}
        )
        large = SelectivityModel.from_selectivities(
            sizes={1: 10_000, 2: 10_000, 3: 10_000}, selectivities={1: 0.9, 2: 0.5, 3: 0.1}
        )
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        cost_small = solve_bigreedy(small, constraints).expected_cost
        cost_large = solve_bigreedy(large, constraints).expected_cost
        # Asymptotic optimality: the per-tuple cost shrinks as n grows because
        # the Hoeffding margins are O(sqrt(n)).
        assert cost_large / 10_000 < cost_small / 100
