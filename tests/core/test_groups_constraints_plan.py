"""Tests for the core data model: groups, constraints, cost model, plans."""

import pytest

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import GroupStatistics, SelectivityModel
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.db.index import GroupIndex
from repro.db.udf import CostLedger
from repro.sampling.sampler import GroupSampler


class TestQueryConstraints:
    def test_defaults_match_paper(self):
        constraints = QueryConstraints()
        assert constraints.alpha == constraints.beta == constraints.rho == 0.8

    def test_browsing_scenario_flag(self):
        assert QueryConstraints(alpha=1.0, beta=0.5, rho=0.8).requires_perfect_precision

    def test_perfect_recall_flag(self):
        assert QueryConstraints(alpha=0.5, beta=1.0, rho=0.8).requires_perfect_recall

    def test_with_methods_return_copies(self):
        base = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
        assert base.with_alpha(0.9).alpha == 0.9
        assert base.with_beta(0.7).beta == 0.7
        assert base.with_rho(0.95).rho == 0.95
        assert base.alpha == 0.8

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            QueryConstraints(alpha=1.5)
        with pytest.raises(ValueError):
            QueryConstraints(beta=-0.1)
        with pytest.raises(ValueError):
            QueryConstraints(rho=1.0)


class TestCostModel:
    def test_plan_cost(self):
        cost_model = CostModel(retrieval_cost=1.0, evaluation_cost=3.0)
        assert cost_model.plan_cost(10, 4) == pytest.approx(22.0)

    def test_ratio(self):
        assert CostModel(1.0, 3.0).evaluation_to_retrieval_ratio == pytest.approx(3.0)

    def test_zero_retrieval_cost_ratio(self):
        assert CostModel(0.0, 3.0).evaluation_to_retrieval_ratio == float("inf")

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(retrieval_cost=-1.0)


class TestGroupStatistics:
    def test_exact_counts_derive_selectivity(self):
        model = SelectivityModel.from_exact_counts({"a": (90, 10)})
        group = model.group("a")
        assert group.size == 100
        assert group.selectivity == pytest.approx(0.9)
        assert group.has_exact_counts

    def test_sampled_bookkeeping(self):
        group = GroupStatistics(
            key="a", size=100, selectivity=0.6, variance=0.01,
            sampled=20, sampled_positives=12,
        )
        assert group.remaining == 80
        assert group.sampled_negatives == 8
        assert group.expected_correct == pytest.approx(12 + 80 * 0.6)

    def test_expected_correct_prefers_exact_counts(self):
        group = GroupStatistics(
            key="a", size=10, selectivity=0.5, correct_count=7, incorrect_count=3
        )
        assert group.expected_correct == 7.0

    def test_invalid_statistics_rejected(self):
        with pytest.raises(ValueError):
            GroupStatistics(key="a", size=-1, selectivity=0.5)
        with pytest.raises(ValueError):
            GroupStatistics(key="a", size=10, selectivity=1.5)
        with pytest.raises(ValueError):
            GroupStatistics(key="a", size=10, selectivity=0.5, sampled=11)
        with pytest.raises(ValueError):
            GroupStatistics(key="a", size=10, selectivity=0.5, sampled=2, sampled_positives=3)
        with pytest.raises(ValueError):
            GroupStatistics(key="a", size=10, selectivity=0.5, correct_count=5, incorrect_count=6)

    def test_with_selectivity(self):
        group = GroupStatistics(key="a", size=10, selectivity=0.5)
        updated = group.with_selectivity(0.7, variance=0.02)
        assert updated.selectivity == 0.7
        assert group.selectivity == 0.5


class TestSelectivityModel:
    def test_example_totals(self, example_model):
        assert example_model.total_size == 3000
        assert example_model.expected_correct_total == pytest.approx(1500)
        assert example_model.overall_selectivity == pytest.approx(0.5)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            SelectivityModel(
                [
                    GroupStatistics(key="a", size=1, selectivity=0.5),
                    GroupStatistics(key="a", size=2, selectivity=0.5),
                ]
            )

    def test_sorted_by_selectivity(self, selectivity_model):
        descending = selectivity_model.sorted_by_selectivity()
        assert [g.key for g in descending] == [1, 2, 3]
        ascending = selectivity_model.sorted_by_selectivity(descending=False)
        assert [g.key for g in ascending] == [3, 2, 1]

    def test_minimum_positive_selectivity(self):
        model = SelectivityModel.from_selectivities(
            sizes={"a": 10, "b": 10, "c": 10},
            selectivities={"a": 0.0, "b": 0.2, "c": 0.9},
        )
        assert model.minimum_positive_selectivity == pytest.approx(0.2)

    def test_group_lookup_errors(self, selectivity_model):
        with pytest.raises(KeyError):
            selectivity_model.group("missing")
        assert not selectivity_model.has_group("missing")

    def test_from_ground_truth(self, toy_table, toy_index, toy_truth):
        model = SelectivityModel.from_ground_truth(toy_index, toy_truth)
        assert model.group(1).correct_count == 4
        assert model.group(2).correct_count == 1
        assert model.group(3).correct_count == 1

    def test_from_sample_outcome(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 4, 2: 3, 3: 5}, CostLedger()
        )
        model = SelectivityModel.from_sample_outcome(toy_index, outcome)
        # Group 1 is all-positive: posterior mean (4+1)/(4+2).
        assert model.group(1).selectivity == pytest.approx(5 / 6)
        assert model.group(1).sampled == 4
        assert model.total_remaining == 0

    def test_unsampled_group_gets_uninformed_prior(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 2}, CostLedger()
        )
        model = SelectivityModel.from_sample_outcome(toy_index, outcome)
        assert model.group(3).selectivity == pytest.approx(0.5)
        assert model.group(3).variance > model.group(1).variance


class TestGroupDecision:
    def test_factories(self):
        assert GroupDecision.discard().retrieve_probability == 0.0
        assert GroupDecision.return_all().evaluate_probability == 0.0
        assert GroupDecision.evaluate_all().evaluate_probability == 1.0

    def test_conditional_probability(self):
        decision = GroupDecision(retrieve=0.8, evaluate=0.4)
        assert decision.conditional_evaluate_probability == pytest.approx(0.5)

    def test_conditional_probability_zero_retrieve(self):
        assert GroupDecision.discard().conditional_evaluate_probability == 0.0

    def test_determinism_flag(self):
        assert GroupDecision.evaluate_all().is_deterministic
        assert not GroupDecision(retrieve=0.7, evaluate=0.1).is_deterministic

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            GroupDecision(retrieve=1.2, evaluate=0.0)
        with pytest.raises(ValueError):
            GroupDecision(retrieve=0.5, evaluate=0.7)


class TestExecutionPlan:
    def test_expected_cost_matches_hand_computation(self, selectivity_model):
        plan = ExecutionPlan.from_probabilities(
            retrieve={1: 1.0, 2: 1.0, 3: 0.0},
            evaluate={1: 0.0, 2: 1.0, 3: 0.0},
        )
        cost_model = CostModel(retrieval_cost=1.0, evaluation_cost=3.0)
        # Retrievals: 2000, evaluations: 1000 -> cost 2000 + 3000.
        assert plan.expected_cost(selectivity_model, cost_model) == pytest.approx(5000.0)
        assert plan.expected_retrievals(selectivity_model) == pytest.approx(2000.0)
        assert plan.expected_evaluations(selectivity_model) == pytest.approx(1000.0)

    def test_expected_precision_recall_example(self, selectivity_model):
        # Return group 1, evaluate group 2, discard group 3 (paper Example 3.1).
        plan = ExecutionPlan.from_probabilities(
            retrieve={1: 1.0, 2: 1.0, 3: 0.0},
            evaluate={1: 0.0, 2: 1.0, 3: 0.0},
        )
        precision = plan.expected_precision(selectivity_model)
        recall = plan.expected_recall(selectivity_model)
        assert precision == pytest.approx(1400 / 1500)
        assert recall == pytest.approx(1400 / 1500)

    def test_missing_group_defaults_to_discard(self, selectivity_model):
        plan = ExecutionPlan({})
        assert plan.decision(1).retrieve_probability == 0.0
        assert plan.expected_cost(selectivity_model, CostModel()) == 0.0

    def test_evaluate_everything_factory(self, selectivity_model):
        plan = ExecutionPlan.evaluate_everything(selectivity_model.keys)
        assert plan.expected_evaluations(selectivity_model) == pytest.approx(3000.0)
        assert plan.expected_precision(selectivity_model) == pytest.approx(1.0)
        assert plan.expected_recall(selectivity_model) == pytest.approx(1.0)

    def test_discard_everything_factory(self, selectivity_model):
        plan = ExecutionPlan.discard_everything(selectivity_model.keys)
        assert plan.expected_recall(selectivity_model) == pytest.approx(0.0)

    def test_from_probabilities_requires_aligned_keys(self):
        with pytest.raises(ValueError):
            ExecutionPlan.from_probabilities(retrieve={1: 1.0}, evaluate={2: 1.0})

    def test_sunk_sampling_cost_included(self):
        model = SelectivityModel(
            [
                GroupStatistics(
                    key="a", size=100, selectivity=0.5, sampled=10, sampled_positives=5
                )
            ]
        )
        plan = ExecutionPlan.discard_everything(["a"])
        cost_model = CostModel(1.0, 3.0)
        assert plan.expected_cost(model, cost_model, include_sampling=True) == pytest.approx(40.0)
        assert plan.expected_cost(model, cost_model, include_sampling=False) == 0.0

    def test_is_deterministic(self):
        plan = ExecutionPlan.evaluate_everything(["a", "b"])
        assert plan.is_deterministic
        plan2 = ExecutionPlan({"a": GroupDecision(retrieve=0.5, evaluate=0.1)})
        assert not plan2.is_deterministic

    def test_describe_contains_groups(self):
        plan = ExecutionPlan.evaluate_everything(["x"])
        assert "x" in plan.describe()

    def test_equality(self):
        a = ExecutionPlan.evaluate_everything(["x"])
        b = ExecutionPlan.evaluate_everything(["x"])
        assert a == b
