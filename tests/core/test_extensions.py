"""Tests for the Section 5 extensions: budget, multi-predicate, join-aware."""

import math

import pytest

from repro.core.constraints import CostModel, QueryConstraints
from repro.core.extensions.budget import solve_budgeted_recall
from repro.core.extensions.join import JoinGroup, solve_join_aware
from repro.core.extensions.multi_predicate import (
    MultiPredicateGroup,
    PredicateAction,
    solve_multi_predicate,
)
from repro.core.groups import SelectivityModel


@pytest.fixture
def budget_model():
    return SelectivityModel.from_selectivities(
        sizes={1: 1000, 2: 1000, 3: 1000},
        selectivities={1: 0.9, 2: 0.5, 3: 0.1},
    )


class TestBudgetedRecall:
    def test_budget_is_respected(self, budget_model):
        solution = solve_budgeted_recall(
            budget_model, precision_bound=0.8, rho=0.8, budget=2000.0
        )
        assert solution.expected_cost <= 2000.0 + 1e-6

    def test_larger_budget_returns_more(self, budget_model):
        small = solve_budgeted_recall(budget_model, 0.8, 0.8, budget=1000.0)
        large = solve_budgeted_recall(budget_model, 0.8, 0.8, budget=4000.0)
        assert large.expected_correct_returned >= small.expected_correct_returned - 1e-6

    def test_zero_budget_returns_nothing(self, budget_model):
        solution = solve_budgeted_recall(budget_model, 0.8, 0.8, budget=0.0)
        assert solution.expected_correct_returned == pytest.approx(0.0, abs=1e-6)

    def test_huge_budget_reaches_full_recall(self, budget_model):
        solution = solve_budgeted_recall(budget_model, 0.5, 0.8, budget=1e9)
        assert solution.expected_recall > 0.95

    def test_precision_constraint_respected_in_expectation(self, budget_model):
        alpha = 0.8
        solution = solve_budgeted_recall(budget_model, alpha, 0.8, budget=3000.0)
        correct = solution.plan.expected_returned_correct(budget_model)
        incorrect = solution.plan.expected_returned_incorrect(budget_model)
        if correct + incorrect > 0:
            assert correct / (correct + incorrect) >= alpha - 1e-6

    def test_negative_budget_rejected(self, budget_model):
        with pytest.raises(ValueError):
            solve_budgeted_recall(budget_model, 0.8, 0.8, budget=-1.0)

    def test_empty_model(self):
        solution = solve_budgeted_recall(SelectivityModel([]), 0.8, 0.8, budget=10.0)
        assert solution.expected_cost == 0.0


@pytest.fixture
def two_predicate_groups():
    return [
        MultiPredicateGroup(key="hi", size=1000, selectivities=(0.9, 0.8)),
        MultiPredicateGroup(key="mid", size=1000, selectivities=(0.6, 0.5)),
        MultiPredicateGroup(key="lo", size=1000, selectivities=(0.2, 0.3)),
    ]


class TestMultiPredicate:
    def test_joint_selectivity(self):
        group = MultiPredicateGroup(key="g", size=10, selectivities=(0.5, 0.4))
        assert group.joint_selectivity == pytest.approx(0.2)

    def test_solution_meets_expected_constraints(self, two_predicate_groups):
        constraints = QueryConstraints(alpha=0.7, beta=0.7, rho=0.8)
        solution = solve_multi_predicate(two_predicate_groups, constraints)
        total_correct = sum(g.size * g.joint_selectivity for g in two_predicate_groups)
        assert solution.expected_returned_correct >= 0.7 * total_correct - 1e-6
        if solution.expected_returned_total > 0:
            assert (
                solution.expected_returned_correct / solution.expected_returned_total
                >= 0.7 - 1e-6
            )

    def test_action_probabilities_are_a_distribution(self, two_predicate_groups):
        constraints = QueryConstraints(alpha=0.7, beta=0.7, rho=0.8)
        solution = solve_multi_predicate(two_predicate_groups, constraints)
        for group in two_predicate_groups:
            total = solution.plan.retrieve_probability(group.key)
            assert -1e-9 <= total <= 1.0 + 1e-6

    def test_high_joint_selectivity_group_not_fully_evaluated(self, two_predicate_groups):
        constraints = QueryConstraints(alpha=0.7, beta=0.7, rho=0.8)
        solution = solve_multi_predicate(two_predicate_groups, constraints)
        both_evaluated = solution.plan.action_probability(
            "hi", (PredicateAction.EVALUATE, PredicateAction.EVALUATE)
        )
        assert both_evaluated < 0.9

    def test_cost_grows_with_predicate_count(self):
        constraints = QueryConstraints(alpha=0.7, beta=0.7, rho=0.8)
        one = solve_multi_predicate(
            [MultiPredicateGroup(key="g", size=1000, selectivities=(0.5,))], constraints
        )
        two = solve_multi_predicate(
            [MultiPredicateGroup(key="g", size=1000, selectivities=(0.5, 0.5))],
            constraints,
        )
        assert two.expected_cost >= one.expected_cost - 1e-6

    def test_mismatched_predicate_counts_rejected(self):
        groups = [
            MultiPredicateGroup(key="a", size=10, selectivities=(0.5,)),
            MultiPredicateGroup(key="b", size=10, selectivities=(0.5, 0.5)),
        ]
        with pytest.raises(ValueError):
            solve_multi_predicate(groups, QueryConstraints(0.5, 0.5, 0.8))

    def test_empty_groups(self):
        solution = solve_multi_predicate([], QueryConstraints(0.5, 0.5, 0.8))
        assert solution.expected_cost == 0.0

    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            MultiPredicateGroup(key="g", size=-1, selectivities=(0.5,))


@pytest.fixture
def join_groups():
    return [
        JoinGroup(key=("A", "big"), size=500, selectivity=0.9, fanout=10.0),
        JoinGroup(key=("A", "small"), size=500, selectivity=0.9, fanout=1.0),
        JoinGroup(key=("B", "big"), size=500, selectivity=0.3, fanout=10.0),
        JoinGroup(key=("B", "small"), size=500, selectivity=0.3, fanout=1.0),
    ]


class TestJoinAware:
    def test_constraints_hold_on_weighted_output(self, join_groups):
        constraints = QueryConstraints(alpha=0.7, beta=0.7, rho=0.8)
        solution = solve_join_aware(join_groups, constraints)
        weighted_correct = sum(
            g.size * g.fanout * g.selectivity for g in join_groups
        )
        assert solution.expected_output_correct >= 0.7 * weighted_correct - 1e-6
        if solution.expected_output_total > 0:
            assert (
                solution.expected_output_correct / solution.expected_output_total
                >= 0.7 - 1e-6
            )

    def test_high_fanout_low_selectivity_group_prioritised_for_evaluation(self, join_groups):
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
        solution = solve_join_aware(join_groups, constraints)
        big = solution.plan.decision(("B", "big"))
        small = solution.plan.decision(("B", "small"))
        # The big-fanout incorrect tuples damage weighted precision ten times
        # more, so when they are retrieved they must be (at least as) evaluated.
        if big.retrieve_probability > 0.1 and small.retrieve_probability > 0.1:
            assert (
                big.conditional_evaluate_probability
                >= small.conditional_evaluate_probability - 1e-6
            )

    def test_uniform_fanout_reduces_to_plain_problem(self):
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
        groups = [
            JoinGroup(key=k, size=1000, selectivity=s, fanout=1.0)
            for k, s in ((1, 0.9), (2, 0.5), (3, 0.1))
        ]
        solution = solve_join_aware(groups, constraints)
        from repro.core.bigreedy import solve_bigreedy

        model = SelectivityModel.from_selectivities(
            sizes={1: 1000, 2: 1000, 3: 1000},
            selectivities={1: 0.9, 2: 0.5, 3: 0.1},
        )
        plain = solve_bigreedy(model, constraints)
        assert solution.expected_cost == pytest.approx(plain.expected_cost, rel=0.05)

    def test_empty_groups(self):
        solution = solve_join_aware([], QueryConstraints(0.8, 0.8, 0.8))
        assert solution.expected_cost == 0.0

    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            JoinGroup(key="x", size=10, selectivity=0.5, fanout=-1.0)
