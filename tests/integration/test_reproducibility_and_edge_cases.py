"""Reproducibility and edge-case scenarios exercised end to end."""

import pytest

from repro.core.constraints import QueryConstraints
from repro.core.pipeline import IntelSample
from repro.db.udf import CostLedger
from repro.stats.metrics import result_quality


class TestReproducibility:
    def test_same_seed_gives_identical_results(self, small_lending_club):
        dataset = small_lending_club
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        outputs = []
        for _ in range(2):
            ledger = CostLedger()
            result = IntelSample(random_state=42).answer(
                dataset.table, dataset.make_udf("repro_a"), constraints, ledger,
                correlated_column="grade",
            )
            outputs.append((sorted(result.row_ids), ledger.evaluated_count))
        assert outputs[0] == outputs[1]

    def test_different_seeds_differ(self, small_lending_club):
        dataset = small_lending_club
        constraints = QueryConstraints(0.8, 0.8, 0.8)
        results = []
        for seed in (1, 2):
            result = IntelSample(random_state=seed).answer(
                dataset.table, dataset.make_udf(f"repro_b{seed}"), constraints,
                CostLedger(), correlated_column="grade",
            )
            results.append(sorted(result.row_ids))
        assert results[0] != results[1]


class TestEdgeCaseConstraints:
    def test_browsing_scenario_yields_perfect_precision(self, small_lending_club):
        """alpha = 1: every returned tuple must be verified."""
        dataset = small_lending_club
        constraints = QueryConstraints(alpha=1.0, beta=0.6, rho=0.8)
        ledger = CostLedger()
        result = IntelSample(random_state=3).answer(
            dataset.table, dataset.make_udf("browse"), constraints, ledger,
            correlated_column="grade",
        )
        quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
        assert quality.precision == 1.0
        # Every returned tuple was either sampled or evaluated during execution.
        assert ledger.evaluated_count >= len(result.row_ids)

    def test_trivial_constraints_cost_almost_nothing(self, small_lending_club):
        dataset = small_lending_club
        constraints = QueryConstraints(alpha=0.0, beta=0.0, rho=0.5)
        ledger = CostLedger()
        result = IntelSample(random_state=4).answer(
            dataset.table, dataset.make_udf("trivial"), constraints, ledger,
            correlated_column="grade",
        )
        # Only the sampling phase should have been paid for.
        report = result.metadata["report"]
        assert ledger.evaluated_count == report.sample_size

    def test_perfect_recall_requirement(self, small_lending_club):
        dataset = small_lending_club
        constraints = QueryConstraints(alpha=0.75, beta=1.0, rho=0.8)
        result = IntelSample(random_state=5).answer(
            dataset.table, dataset.make_udf("full_recall"), constraints, CostLedger(),
            correlated_column="grade",
        )
        quality = result_quality(result.row_ids, dataset.ground_truth_row_ids())
        # beta = 1 forces the plan to retrieve every group with positive
        # estimated selectivity; on this dataset that is every group.
        assert quality.recall == pytest.approx(1.0)

    def test_high_rho_is_more_conservative(self, small_lending_club):
        dataset = small_lending_club
        costs = {}
        for rho in (0.5, 0.95):
            ledger = CostLedger()
            IntelSample(random_state=6).answer(
                dataset.table, dataset.make_udf(f"rho_{rho}"),
                QueryConstraints(0.8, 0.8, rho), ledger, correlated_column="grade",
            )
            costs[rho] = ledger.total_cost
        assert costs[0.95] >= costs[0.5] - 1e-9
