"""Integration tests spanning the full stack: engine + strategies + datasets."""

import pytest

from repro.baselines import NaiveBaseline
from repro.core.constraints import QueryConstraints
from repro.core.pipeline import IntelSample, OptimalOracle
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.predicate import ColumnPredicate, UdfPredicate
from repro.db.query import SelectQuery
from repro.db.udf import CostLedger


@pytest.fixture
def environment(small_lending_club):
    dataset = small_lending_club
    catalog = Catalog()
    catalog.register_table(dataset.table)
    udf = dataset.make_udf("loan_fully_paid")
    catalog.register_udf(udf)
    engine = Engine(catalog, retrieval_cost=1.0, evaluation_cost=3.0)
    return dataset, engine, udf


class TestEngineWithStrategies:
    def test_exact_query_through_engine(self, environment):
        dataset, engine, udf = environment
        query = SelectQuery(
            table=dataset.table.name, predicate=UdfPredicate(udf),
            alpha=1.0, beta=1.0, rho=0.99,
        )
        result = engine.execute(query, audit=True)
        assert result.quality.precision == 1.0
        assert result.quality.recall == 1.0
        assert result.row_id_set == dataset.ground_truth_row_ids()

    def test_intel_sample_through_engine(self, environment):
        dataset, engine, udf = environment
        query = SelectQuery(
            table=dataset.table.name, predicate=UdfPredicate(udf),
            alpha=0.8, beta=0.8, rho=0.8, correlated_column="grade",
        )
        exact_cost = engine.execute(query.__class__(
            table=query.table, predicate=query.predicate, alpha=1.0, beta=1.0, rho=0.99,
        )).total_cost
        result = engine.execute(query, strategy=IntelSample(random_state=0), audit=True)
        assert result.total_cost < exact_cost
        assert result.quality.precision >= 0.7
        assert result.quality.recall >= 0.7
        assert result.metadata["strategy"] == "intel_sample"

    def test_three_strategies_cost_ordering(self, environment):
        dataset, engine, udf = environment
        query = SelectQuery(
            table=dataset.table.name, predicate=UdfPredicate(udf),
            alpha=0.8, beta=0.8, rho=0.8, correlated_column="grade",
        )
        naive = engine.execute(query, strategy=NaiveBaseline(random_state=1))
        intel = engine.execute(query, strategy=IntelSample(random_state=1))
        oracle = engine.execute(query, strategy=OptimalOracle(random_state=1))
        assert oracle.ledger.evaluated_count <= intel.ledger.evaluated_count
        assert intel.ledger.evaluated_count < naive.ledger.evaluated_count

    def test_cheap_predicate_combined_with_udf(self, environment):
        dataset, engine, udf = environment
        query = SelectQuery(
            table=dataset.table.name,
            predicate=UdfPredicate(udf),
            cheap_predicates=[ColumnPredicate("grade", "in", ("A", "B"))],
            alpha=1.0, beta=1.0, rho=0.99,
        )
        result = engine.execute(query, audit=False)
        grades = dataset.table.column_values("grade")
        assert all(grades[row_id] in ("A", "B") for row_id in result.row_ids)

    def test_audit_matches_manual_quality(self, environment):
        dataset, engine, udf = environment
        query = SelectQuery(
            table=dataset.table.name, predicate=UdfPredicate(udf),
            alpha=0.8, beta=0.8, rho=0.8, correlated_column="grade",
        )
        result = engine.execute(query, strategy=IntelSample(random_state=3), audit=True)
        from repro.stats.metrics import result_quality

        manual = result_quality(result.row_ids, dataset.ground_truth_row_ids())
        assert result.quality.precision == pytest.approx(manual.precision)
        assert result.quality.recall == pytest.approx(manual.recall)


class TestSavingsShape:
    def test_savings_grow_with_selectivity(self):
        """The paper's Table 2 trend: higher selectivity -> larger savings."""
        from repro.datasets.registry import load_dataset

        constraints = QueryConstraints(0.8, 0.8, 0.8)
        savings = {}
        for name in ("lending_club", "marketing"):
            dataset = load_dataset(name, random_state=11, scale=0.08)
            naive_ledger = CostLedger()
            NaiveBaseline(random_state=0).answer(
                dataset.table, dataset.make_udf("n"), constraints, naive_ledger
            )
            intel_ledger = CostLedger()
            IntelSample(random_state=0).answer(
                dataset.table, dataset.make_udf("i"), constraints, intel_ledger,
                correlated_column=dataset.correlated_column,
            )
            savings[name] = 1.0 - intel_ledger.evaluated_count / naive_ledger.evaluated_count
        assert savings["lending_club"] > savings["marketing"]
        assert savings["lending_club"] > 0.4
