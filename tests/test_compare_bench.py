"""Tests for the benchmark-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parents[1] / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _payload(
    cold_evals=1000,
    warm_evals=100,
    ratio=10.0,
    hit_rate=0.95,
    cold_index_builds=1,
    cold_row_calls=0,
):
    return {
        "cold": {
            "udf_evaluations": cold_evals,
            "solver_calls": 80,
            "work": cold_evals + 80,
            "group_index_builds": cold_index_builds,
            "udf_bulk_calls": 200,
            "udf_row_calls": cold_row_calls,
        },
        "warm": {
            "udf_evaluations": warm_evals,
            "solver_calls": 4,
            "work": warm_evals + 4,
            "group_index_builds": 1,
            "udf_bulk_calls": 120,
            "udf_row_calls": 0,
            "plan_cache": {"hit_rate": hit_rate},
        },
        "work_ratio_cold_over_warm": ratio,
        "seconds": 1.23,
    }


def _coldpath_payload(rows=26500, evals=60000, index_builds=1, row_calls=0):
    return {
        "rows": rows,
        "cold": {
            "udf_evaluations": evals,
            "solver_calls": 8,
            "group_index_builds": index_builds,
            "udf_bulk_calls": 18,
            "udf_row_calls": row_calls,
        },
        "seconds": 0.5,
    }


def _run(tmp_path, baseline, fresh, tolerance=0.15, profile=None):
    base_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    argv = [
        "--baseline",
        str(base_path),
        "--fresh",
        str(fresh_path),
        "--tolerance",
        str(tolerance),
    ]
    if profile is not None:
        argv += ["--profile", profile]
    return compare_bench.main(argv)


class TestClassify:
    def test_within_tolerance_is_ok(self):
        assert compare_bench._classify(100.0, 110.0, True, 0.15) == "ok"
        assert compare_bench._classify(100.0, 90.0, False, 0.15) == "ok"

    def test_lower_is_better_regression(self):
        assert compare_bench._classify(100.0, 120.0, True, 0.15) == "regression"
        assert compare_bench._classify(100.0, 80.0, True, 0.15) == "improvement"

    def test_higher_is_better_regression(self):
        assert compare_bench._classify(10.0, 8.0, False, 0.15) == "regression"
        assert compare_bench._classify(10.0, 12.0, False, 0.15) == "improvement"

    def test_zero_baseline_does_not_divide_by_zero(self):
        assert compare_bench._classify(0.0, 0.0, True, 0.15) == "ok"
        assert compare_bench._classify(0.0, 1.0, True, 0.15) == "regression"


class TestGate:
    def test_identical_payloads_pass(self, tmp_path):
        assert _run(tmp_path, _payload(), _payload()) == 0

    def test_small_drift_passes(self, tmp_path):
        assert _run(tmp_path, _payload(), _payload(cold_evals=1100, warm_evals=105)) == 0

    def test_work_regression_fails(self, tmp_path):
        assert _run(tmp_path, _payload(), _payload(warm_evals=200)) == 1

    def test_amortisation_ratio_regression_fails(self, tmp_path):
        assert _run(tmp_path, _payload(), _payload(ratio=5.0)) == 1

    def test_large_improvement_passes_but_notes_stale_baseline(self, tmp_path, capsys):
        assert _run(tmp_path, _payload(), _payload(warm_evals=10, ratio=30.0)) == 0
        out = capsys.readouterr().out
        assert "re-run the benchmark" in out

    def test_missing_counter_fails(self, tmp_path):
        broken = _payload()
        del broken["work_ratio_cold_over_warm"]
        assert _run(tmp_path, _payload(), broken) == 1

    def test_index_build_regression_fails(self, tmp_path):
        """The cold path rebuilding indexes per query must trip the gate."""
        assert _run(tmp_path, _payload(), _payload(cold_index_builds=80)) == 1

    def test_per_row_udf_regression_fails(self, tmp_path):
        """Per-row UDF calls creeping back into the cold path must fail."""
        assert _run(tmp_path, _payload(), _payload(cold_row_calls=500)) == 1

    def test_gate_accepts_the_committed_baseline(self):
        """The committed BENCH_serving.json must pass against itself."""
        committed = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "BENCH_serving.json"
        )
        payload = json.loads(committed.read_text())
        rows = list(compare_bench.compare(payload, payload, 0.15))
        assert rows, "no gated counters found in the committed baseline"
        assert all(verdict == "ok" for *_rest, verdict in rows)

    def test_wall_clock_fields_are_not_gated(self):
        for counters in compare_bench.PROFILES.values():
            gated = {name for name, _ in counters}
            assert not any(
                "seconds" in name or "queries_per_second" in name for name in gated
            )


def _scale_payload(parity_delta=0, mismatches=0, process_delta=0,
                   serial_evals=1_400_000):
    replay = {
        "udf_evaluations": serial_evals,
        "solver_calls": 3,
        "udf_row_calls": 0,
    }
    return {
        "rows": 1_000_000,
        "shards": 8,
        "workers": 4,
        "serial": dict(replay),
        "parallel": dict(replay, udf_evaluations=serial_evals + parity_delta),
        "python_udf": {
            "serial": dict(replay),
            "thread": dict(replay),
            "process": dict(replay, udf_evaluations=serial_evals + process_delta),
        },
        "parity": {
            "udf_evaluations_abs_delta": abs(parity_delta),
            "solver_calls_abs_delta": 0,
            "row_ids_mismatch": mismatches,
            "thread_python_udf_evaluations_abs_delta": 0,
            "thread_python_solver_calls_abs_delta": 0,
            "thread_python_row_ids_mismatch": 0,
            "process_udf_evaluations_abs_delta": abs(process_delta),
            "process_solver_calls_abs_delta": 0,
            "process_row_ids_mismatch": 0,
            "workload_row_ids_mismatch": 0,
        },
        "parallel_speedup": 0.9,
        "thread_python_speedup": 0.8,
        "process_speedup": 2.4,
        "seconds": 1.0,
    }


class TestScaleProfile:
    def test_identical_payloads_pass(self, tmp_path):
        assert _run(tmp_path, _scale_payload(), _scale_payload(), profile="scale") == 0

    def test_any_parity_delta_fails(self, tmp_path):
        """The zero-baseline parity counters gate at exactly ±0."""
        assert _run(
            tmp_path, _scale_payload(), _scale_payload(parity_delta=1), profile="scale"
        ) == 1

    def test_result_mismatch_fails(self, tmp_path):
        assert _run(
            tmp_path, _scale_payload(), _scale_payload(mismatches=1), profile="scale"
        ) == 1

    def test_failure_message_names_counter_with_values(self, tmp_path, capsys):
        _run(tmp_path, _scale_payload(), _scale_payload(parity_delta=7), profile="scale")
        out = capsys.readouterr().out
        assert "parity.udf_evaluations_abs_delta" in out
        assert "baseline=0" in out and "fresh=7" in out

    def test_gate_accepts_the_committed_baseline(self):
        committed = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "BENCH_scale.json"
        )
        payload = json.loads(committed.read_text())
        rows = list(compare_bench.compare(payload, payload, 0.15, profile="scale"))
        assert rows, "no gated counters found in the committed scale baseline"
        assert all(verdict == "ok" for *_rest, verdict in rows)


def _traffic_payload(evals=41_000_000, accounting_delta=0, silent=0, shed=28,
                     deadline_delta=0, deadline_unexpected=0, exceeded=8):
    return {
        "rows": 80_000,
        "clients": 1200,
        "signatures": 6,
        "work": {
            "queries": 1206,
            "plan_hits": 1200,
            "solver_calls": 6,
            "udf_evaluations": evals,
            "shed": 0,
        },
        "shed": {
            "fired": 32,
            "shed_count": shed,
            "silent_drops": silent,
            "accounting_delta": accounting_delta,
        },
        "deadline": {
            "fired": 8,
            "exceeded_count": exceeded,
            "unexpected": deadline_unexpected,
            "accounting_delta": deadline_delta,
        },
        "latency": {"qps": 35.0, "p50_ms": 190.0, "p99_ms": 550.0},
    }


class TestTrafficProfile:
    def test_identical_payloads_pass(self, tmp_path):
        assert _run(
            tmp_path, _traffic_payload(), _traffic_payload(), profile="traffic"
        ) == 0

    def test_work_regression_fails(self, tmp_path):
        assert _run(
            tmp_path,
            _traffic_payload(),
            _traffic_payload(evals=55_000_000),
            profile="traffic",
        ) == 1

    def test_shed_accounting_delta_fails_exactly(self, tmp_path):
        """One uncounted Overloaded raise trips the zero-baseline gate."""
        assert _run(
            tmp_path,
            _traffic_payload(),
            _traffic_payload(accounting_delta=1),
            profile="traffic",
        ) == 1

    def test_silent_drop_fails(self, tmp_path):
        assert _run(
            tmp_path,
            _traffic_payload(),
            _traffic_payload(silent=1, shed=27),
            profile="traffic",
        ) == 1

    def test_deadline_accounting_delta_fails_exactly(self, tmp_path):
        """One uncounted DeadlineExceeded raise trips the zero-baseline gate."""
        assert _run(
            tmp_path,
            _traffic_payload(),
            _traffic_payload(deadline_delta=1),
            profile="traffic",
        ) == 1

    def test_deadline_hang_or_silent_completion_fails(self, tmp_path):
        assert _run(
            tmp_path,
            _traffic_payload(),
            _traffic_payload(deadline_unexpected=1, exceeded=7),
            profile="traffic",
        ) == 1

    def test_latency_is_informational_only(self, tmp_path):
        fresh = _traffic_payload()
        fresh["latency"] = {"qps": 1.0, "p50_ms": 9000.0, "p99_ms": 90000.0}
        assert _run(tmp_path, _traffic_payload(), fresh, profile="traffic") == 0

    def test_gate_accepts_the_committed_baseline(self):
        committed = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "BENCH_traffic.json"
        )
        payload = json.loads(committed.read_text())
        rows = list(compare_bench.compare(payload, payload, 0.15, profile="traffic"))
        assert rows, "no gated counters found in the committed traffic baseline"
        assert all(verdict == "ok" for *_rest, verdict in rows)


class TestColdpathProfile:
    def test_identical_payloads_pass(self, tmp_path):
        assert _run(
            tmp_path, _coldpath_payload(), _coldpath_payload(), profile="coldpath"
        ) == 0

    def test_eval_regression_fails(self, tmp_path):
        assert _run(
            tmp_path,
            _coldpath_payload(),
            _coldpath_payload(evals=90000),
            profile="coldpath",
        ) == 1

    def test_shrunk_scaling_point_fails(self, tmp_path):
        """Quietly shrinking the 25k-row bench point counts as a regression."""
        assert _run(
            tmp_path,
            _coldpath_payload(),
            _coldpath_payload(rows=2650, evals=6000),
            profile="coldpath",
        ) == 1

    def test_gate_accepts_the_committed_baseline(self):
        committed = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "BENCH_coldpath.json"
        )
        payload = json.loads(committed.read_text())
        rows = list(compare_bench.compare(payload, payload, 0.15, profile="coldpath"))
        assert rows, "no gated counters found in the committed coldpath baseline"
        assert all(verdict == "ok" for *_rest, verdict in rows)
