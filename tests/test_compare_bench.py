"""Tests for the benchmark-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parents[1] / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _payload(cold_evals=1000, warm_evals=100, ratio=10.0, hit_rate=0.95):
    return {
        "cold": {"udf_evaluations": cold_evals, "solver_calls": 80, "work": cold_evals + 80},
        "warm": {
            "udf_evaluations": warm_evals,
            "solver_calls": 4,
            "work": warm_evals + 4,
            "plan_cache": {"hit_rate": hit_rate},
        },
        "work_ratio_cold_over_warm": ratio,
        "seconds": 1.23,
    }


def _run(tmp_path, baseline, fresh, tolerance=0.15):
    base_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    return compare_bench.main(
        [
            "--baseline",
            str(base_path),
            "--fresh",
            str(fresh_path),
            "--tolerance",
            str(tolerance),
        ]
    )


class TestClassify:
    def test_within_tolerance_is_ok(self):
        assert compare_bench._classify(100.0, 110.0, True, 0.15) == "ok"
        assert compare_bench._classify(100.0, 90.0, False, 0.15) == "ok"

    def test_lower_is_better_regression(self):
        assert compare_bench._classify(100.0, 120.0, True, 0.15) == "regression"
        assert compare_bench._classify(100.0, 80.0, True, 0.15) == "improvement"

    def test_higher_is_better_regression(self):
        assert compare_bench._classify(10.0, 8.0, False, 0.15) == "regression"
        assert compare_bench._classify(10.0, 12.0, False, 0.15) == "improvement"

    def test_zero_baseline_does_not_divide_by_zero(self):
        assert compare_bench._classify(0.0, 0.0, True, 0.15) == "ok"
        assert compare_bench._classify(0.0, 1.0, True, 0.15) == "regression"


class TestGate:
    def test_identical_payloads_pass(self, tmp_path):
        assert _run(tmp_path, _payload(), _payload()) == 0

    def test_small_drift_passes(self, tmp_path):
        assert _run(tmp_path, _payload(), _payload(cold_evals=1100, warm_evals=105)) == 0

    def test_work_regression_fails(self, tmp_path):
        assert _run(tmp_path, _payload(), _payload(warm_evals=200)) == 1

    def test_amortisation_ratio_regression_fails(self, tmp_path):
        assert _run(tmp_path, _payload(), _payload(ratio=5.0)) == 1

    def test_large_improvement_passes_but_notes_stale_baseline(self, tmp_path, capsys):
        assert _run(tmp_path, _payload(), _payload(warm_evals=10, ratio=30.0)) == 0
        out = capsys.readouterr().out
        assert "re-run the benchmark" in out

    def test_missing_counter_fails(self, tmp_path):
        broken = _payload()
        del broken["work_ratio_cold_over_warm"]
        assert _run(tmp_path, _payload(), broken) == 1

    def test_gate_accepts_the_committed_baseline(self):
        """The committed BENCH_serving.json must pass against itself."""
        committed = (
            Path(__file__).resolve().parents[1] / "benchmarks" / "BENCH_serving.json"
        )
        payload = json.loads(committed.read_text())
        rows = list(compare_bench.compare(payload, payload, 0.15))
        assert rows, "no gated counters found in the committed baseline"
        assert all(verdict == "ok" for *_rest, verdict in rows)

    def test_wall_clock_fields_are_not_gated(self):
        gated = {name for name, _ in compare_bench.GATED_COUNTERS}
        assert not any("seconds" in name or "queries_per_second" in name for name in gated)
