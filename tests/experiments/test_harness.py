"""Tests for the experiment harness and the table/figure drivers."""

import pytest

from repro.experiments.experiment1 import figure1a, figure2a_2b, savings_summary
from repro.experiments.experiment2 import figure3b, optimum_of
from repro.experiments.experiment3 import figure2c, is_convex_increasing
from repro.experiments.harness import (
    ExperimentConfig,
    make_strategy,
    run_strategy,
)
from repro.experiments.report import format_mapping, format_series, format_table
from repro.experiments.tables import (
    PAPER_TABLE2,
    table1_example,
    table2_savings,
    table3_group_statistics,
)

#: A deliberately tiny configuration so the drivers run in seconds.
FAST = ExperimentConfig(scale=0.03, iterations=2, seed=7)


@pytest.fixture(scope="module")
def fast_dataset():
    return FAST.load("lending_club")


class TestConfig:
    def test_constraint_and_cost_objects(self):
        config = ExperimentConfig(alpha=0.7, beta=0.9, rho=0.85, evaluation_cost=5.0)
        assert config.constraints.alpha == 0.7
        assert config.constraints.beta == 0.9
        assert config.cost_model.evaluation_cost == 5.0
        assert config.new_ledger().evaluation_cost == 5.0

    def test_with_constraints_copy(self):
        config = ExperimentConfig()
        updated = config.with_constraints(alpha=0.9)
        assert updated.alpha == 0.9
        assert config.alpha == 0.8

    def test_dataset_loading_is_deterministic(self):
        a = FAST.load("prosper")
        b = FAST.load("prosper")
        assert a.table.column_values("grade") == b.table.column_values("grade")


class TestRunStrategy:
    def test_naive_stats(self, fast_dataset):
        stats = run_strategy("naive", fast_dataset, FAST)
        assert stats.num_runs == FAST.iterations
        assert stats.mean_evaluations > 0
        assert stats.mean_precision == 1.0

    def test_intel_sample_cheaper_than_naive(self, fast_dataset):
        naive = run_strategy("naive", fast_dataset, FAST)
        intel = run_strategy("intel_sample", fast_dataset, FAST)
        assert intel.mean_evaluations < naive.mean_evaluations

    def test_optimal_cheapest(self, fast_dataset):
        optimal = run_strategy("optimal", fast_dataset, FAST)
        intel = run_strategy("intel_sample", fast_dataset, FAST)
        assert optimal.mean_cost <= intel.mean_cost + 1e-6

    def test_unknown_strategy_rejected(self, fast_dataset):
        with pytest.raises(ValueError):
            make_strategy("bogus", FAST, fast_dataset, seed=0)

    def test_strategy_factory_types(self, fast_dataset):
        from repro.baselines import LearningBaseline, NaiveBaseline
        from repro.core.pipeline import IntelSample, OptimalOracle

        assert isinstance(make_strategy("naive", FAST, fast_dataset, 0), NaiveBaseline)
        assert isinstance(make_strategy("learning", FAST, fast_dataset, 0), LearningBaseline)
        assert isinstance(make_strategy("optimal", FAST, fast_dataset, 0), OptimalOracle)
        assert isinstance(
            make_strategy("intel_sample", FAST, fast_dataset, 0), IntelSample
        )


class TestDrivers:
    def test_figure1a_structure_and_ordering(self):
        results = figure1a(FAST, dataset_names=("lending_club",))
        by_strategy = results["lending_club"]
        assert set(by_strategy) == {"naive", "intel_sample", "optimal"}
        assert (
            by_strategy["optimal"].mean_cost
            <= by_strategy["intel_sample"].mean_cost + 1e-6
        )
        assert (
            by_strategy["intel_sample"].mean_evaluations
            < by_strategy["naive"].mean_evaluations
        )

    def test_savings_summary_rows(self):
        results = figure1a(FAST, dataset_names=("lending_club",))
        rows = savings_summary(results)
        assert rows[0]["dataset"] == "lending_club"
        assert 0.0 < rows[0]["savings_vs_naive"] < 1.0

    def test_figure2a_2b_rates_in_unit_interval(self):
        results = figure2a_2b(
            FAST, rho_values=(0.5, 0.8), dataset_names=("lending_club",), iterations=2
        )
        for per_rho in results.values():
            for rates in per_rho.values():
                assert 0.0 <= rates["precision_rate"] <= 1.0
                assert 0.0 <= rates["recall_rate"] <= 1.0

    def test_figure3b_sweep_shape(self):
        results = figure3b(
            FAST, dataset_names=("lending_club",), num_values=(1.0, 3.0), iterations=1
        )
        series = results["lending_club"]
        assert set(series) == {1.0, 3.0}
        assert optimum_of(series) in series

    def test_figure2c_returns_requested_multipliers(self):
        results = figure2c(
            FAST, alphas=(0.4, 0.8), num_multipliers=(2.5,), iterations=1
        )
        assert set(results) == {2.5}
        assert set(results[2.5]) == {0.4, 0.8}

    def test_is_convex_increasing_helper(self):
        assert is_convex_increasing({0.2: 10.0, 0.8: 30.0})
        assert not is_convex_increasing({0.2: 30.0, 0.8: 10.0})


class TestTables:
    def test_table1_matches_paper(self):
        rows = {row["A"]: row for row in table1_example()}
        assert rows[1]["correct"] == 4
        assert rows[2]["correct"] == 1
        assert rows[3]["tuples"] == 5

    def test_table3_shape(self):
        rows = table3_group_statistics()
        assert len(rows) == 4
        for row in rows:
            assert row["num_groups"] == row["paper_num_groups"]

    def test_table2_savings_positive(self):
        rows = table2_savings(
            FAST, dataset_names=("lending_club",), include_ml_baselines=False
        )
        assert rows[0]["savings_vs_naive"] > 0.0
        assert rows[0]["paper_savings_vs_naive"] == PAPER_TABLE2["lending_club"]["savings_vs_naive"]


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(line.startswith("|") for line in lines)

    def test_format_series(self):
        text = format_series({"s1": {1: 2.0}, "s2": {1: 3.0, 2: 4.0}}, x_label="x")
        assert "s1" in text and "s2" in text and "x" in text

    def test_format_mapping(self):
        text = format_mapping({"k": 1.0})
        assert "k" in text
