"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the package importable even without an installed distribution (the
# offline environment cannot build editable wheels).
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.constraints import CostModel, QueryConstraints  # noqa: E402
from repro.core.groups import SelectivityModel  # noqa: E402
from repro.datasets.lending_club import load_lending_club  # noqa: E402
from repro.datasets.toy import toy_credit_table, toy_credit_udf  # noqa: E402
from repro.db.index import GroupIndex  # noqa: E402
from repro.db.udf import CostLedger  # noqa: E402


@pytest.fixture
def toy_table():
    """The paper's Table 1 example relation."""
    return toy_credit_table()


@pytest.fixture
def toy_udf():
    """The credit-check UDF over the toy relation."""
    return toy_credit_udf()


@pytest.fixture
def toy_index(toy_table):
    """Group index on the toy relation's correlated attribute A."""
    return GroupIndex(toy_table, "A")


@pytest.fixture
def toy_truth(toy_table):
    """Row ids of the toy relation's correct tuples."""
    labels = toy_table.column_values("f", allow_hidden=True)
    return {row_id for row_id, value in enumerate(labels) if value}


@pytest.fixture
def default_constraints():
    """The paper's default constraints: alpha = beta = rho = 0.8."""
    return QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)


@pytest.fixture
def default_cost_model():
    """The paper's default cost model: o_r = 1, o_e = 3."""
    return CostModel(retrieval_cost=1.0, evaluation_cost=3.0)


@pytest.fixture
def default_ledger():
    """A fresh ledger with the default unit costs."""
    return CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)


@pytest.fixture
def example_model():
    """The paper's Example 3.1 model: three groups of 1000 tuples."""
    return SelectivityModel.from_exact_counts(
        {1: (900, 100), 2: (500, 500), 3: (100, 900)}
    )


@pytest.fixture
def selectivity_model():
    """A perfect-selectivity model matching Example 3.3."""
    return SelectivityModel.from_selectivities(
        sizes={1: 1000, 2: 1000, 3: 1000},
        selectivities={1: 0.9, 2: 0.5, 3: 0.1},
    )


@pytest.fixture(scope="session")
def small_lending_club():
    """A small (5%) Lending-Club-like dataset shared across tests."""
    return load_lending_club(random_state=123, scale=0.05)


@pytest.fixture(scope="session")
def tiny_lending_club():
    """A tiny (2%) Lending-Club-like dataset for the slowest paths."""
    return load_lending_club(random_state=321, scale=0.02)
