"""Tests for the sampling-allocation schemes (paper Section 4.3 / 6.3)."""

import pytest

from repro.sampling.schemes import (
    ConstantScheme,
    FixedFractionScheme,
    TwoThirdPowerScheme,
)


GROUP_SIZES = {"a": 1000, "b": 500, "c": 100, "d": 1}


class TestConstantScheme:
    def test_constant_allocation(self):
        allocation = ConstantScheme(tuples_per_group=50).allocate(GROUP_SIZES)
        assert allocation["a"] == 50
        assert allocation["b"] == 50

    def test_clipped_to_group_size(self):
        allocation = ConstantScheme(tuples_per_group=500).allocate(GROUP_SIZES)
        assert allocation["c"] == 100
        assert allocation["d"] == 1

    def test_minimum_one_sample_per_nonempty_group(self):
        allocation = ConstantScheme(tuples_per_group=0).allocate(GROUP_SIZES)
        assert allocation["a"] == 1

    def test_empty_group_gets_zero(self):
        allocation = ConstantScheme(tuples_per_group=5).allocate({"a": 0, "b": 10})
        assert allocation["a"] == 0

    def test_negative_parameter_rejected(self):
        with pytest.raises(ValueError):
            ConstantScheme(tuples_per_group=-1)


class TestTwoThirdPowerScheme:
    def test_matches_rule_of_thumb(self):
        scheme = TwoThirdPowerScheme(num=2.0)
        total = sum(GROUP_SIZES.values())
        expected = round(2.0 * 1000 * total ** (-1 / 3))
        assert scheme.allocate(GROUP_SIZES)["a"] == expected

    def test_allocation_proportional_to_group_size(self):
        allocation = TwoThirdPowerScheme(num=2.0).allocate(GROUP_SIZES)
        assert allocation["a"] > allocation["b"] > allocation["c"]

    def test_total_grows_sublinearly_with_table_size(self):
        scheme = TwoThirdPowerScheme(num=2.0)
        small = scheme.total_allocation({"a": 1000, "b": 1000})
        large = scheme.total_allocation({"a": 8000, "b": 8000})
        # Total samples should grow like n^(2/3): x8 size -> x4 samples.
        assert large < 8 * small
        assert large > 2 * small

    def test_larger_num_samples_more(self):
        small = TwoThirdPowerScheme(num=1.0).total_allocation(GROUP_SIZES)
        large = TwoThirdPowerScheme(num=4.0).total_allocation(GROUP_SIZES)
        assert large > small

    def test_negative_num_rejected(self):
        with pytest.raises(ValueError):
            TwoThirdPowerScheme(num=-0.5)


class TestFixedFractionScheme:
    def test_five_percent_of_each_group(self):
        allocation = FixedFractionScheme(fraction=0.05).allocate(GROUP_SIZES)
        assert allocation["a"] == 50
        assert allocation["b"] == 25

    def test_minimum_one_sample(self):
        allocation = FixedFractionScheme(fraction=0.001).allocate(GROUP_SIZES)
        assert allocation["c"] == 1

    def test_full_fraction_samples_everything(self):
        allocation = FixedFractionScheme(fraction=1.0).allocate(GROUP_SIZES)
        assert allocation == {"a": 1000, "b": 500, "c": 100, "d": 1}

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            FixedFractionScheme(fraction=1.5)
