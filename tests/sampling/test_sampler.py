"""Tests for the stratified group sampler and adaptive num search."""

import pytest

from repro.db.index import GroupIndex
from repro.db.udf import CostLedger
from repro.sampling.adaptive import (
    choose_num_adaptively,
    default_num_schedule,
)
from repro.sampling.sampler import GroupSampler, SampleOutcome
from repro.sampling.schemes import ConstantScheme


class TestGroupSampler:
    def test_allocation_is_respected(self, toy_table, toy_index, toy_udf):
        ledger = CostLedger()
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 2, 2: 1, 3: 3}, ledger
        )
        assert outcome.samples[1].sample_size == 2
        assert outcome.samples[2].sample_size == 1
        assert outcome.samples[3].sample_size == 3

    def test_costs_charged_per_sampled_tuple(self, toy_table, toy_index, toy_udf):
        ledger = CostLedger(retrieval_cost=1.0, evaluation_cost=3.0)
        GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 2, 2: 2, 3: 2}, ledger
        )
        assert ledger.retrieved_count == 6
        assert ledger.evaluated_count == 6
        assert ledger.total_cost == pytest.approx(6 * 4.0)

    def test_oversized_allocation_clipped(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 100}, CostLedger()
        )
        assert outcome.samples[1].sample_size == 4

    def test_group_one_is_all_positive(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=0).sample(
            toy_table, toy_index, toy_udf, {1: 4}, CostLedger()
        )
        assert outcome.samples[1].positives == 4
        assert outcome.samples[1].posterior.mean > 0.8

    def test_already_sampled_rows_skipped(self, toy_table, toy_index, toy_udf):
        sampler = GroupSampler(random_state=0)
        first = sampler.sample(toy_table, toy_index, toy_udf, {3: 3}, CostLedger())
        second = sampler.sample(
            toy_table, toy_index, toy_udf, {3: 5}, CostLedger(), already_sampled=first
        )
        overlap = set(first.samples[3].sampled_row_ids) & set(
            second.samples[3].sampled_row_ids
        )
        assert overlap == set()
        merged = first.merge(second)
        assert merged.samples[3].sample_size == 5

    def test_outcome_totals(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=1).sample(
            toy_table, toy_index, toy_udf, {1: 2, 2: 3, 3: 4}, CostLedger()
        )
        assert outcome.total_sampled == 9
        assert outcome.total_positives == len(outcome.positive_row_ids())
        assert len(outcome.sampled_row_ids()) == 9

    def test_posterior_for_unsampled_group_is_uninformed(self, toy_table, toy_index, toy_udf):
        outcome = GroupSampler(random_state=1).sample(
            toy_table, toy_index, toy_udf, {1: 2}, CostLedger()
        )
        assert outcome.posterior(3).sample_size == 0
        assert outcome.posterior("unknown").mean == pytest.approx(0.5)

    def test_deterministic_given_seed(self, toy_table, toy_index, toy_udf):
        a = GroupSampler(random_state=7).sample(
            toy_table, toy_index, toy_udf, {3: 2}, CostLedger()
        )
        b = GroupSampler(random_state=7).sample(
            toy_table, toy_index, toy_udf, {3: 2}, CostLedger()
        )
        assert a.samples[3].sampled_row_ids == b.samples[3].sampled_row_ids


class TestAdaptiveNumSearch:
    def test_finds_minimum_of_convex_cost(self):
        costs = {1.0: 100.0, 2.0: 60.0, 3.0: 40.0, 4.0: 55.0, 5.0: 90.0}
        result = choose_num_adaptively(lambda num: costs[num], [1.0, 2.0, 3.0, 4.0, 5.0])
        assert result.best_num == 3.0
        assert result.best_cost == 40.0

    def test_stops_early_after_patience_exceeded(self):
        evaluated = []

        def cost(num):
            evaluated.append(num)
            return {1.0: 10.0, 2.0: 20.0, 3.0: 30.0, 4.0: 40.0}[num]

        result = choose_num_adaptively(cost, [1.0, 2.0, 3.0, 4.0], patience=1)
        assert result.best_num == 1.0
        assert evaluated == [1.0, 2.0, 3.0]  # stops after two consecutive rises

    def test_monotone_decreasing_cost_uses_last_candidate(self):
        result = choose_num_adaptively(lambda num: -num, [1.0, 2.0, 3.0])
        assert result.best_num == 3.0

    def test_rejects_empty_schedule(self):
        with pytest.raises(ValueError):
            choose_num_adaptively(lambda num: 0.0, [])

    def test_rejects_non_increasing_schedule(self):
        with pytest.raises(ValueError):
            choose_num_adaptively(lambda num: 0.0, [2.0, 1.0])

    def test_default_schedule_scales_with_alpha(self):
        schedule = default_num_schedule(alpha=0.8)
        assert schedule[0] == pytest.approx(0.8)
        assert all(b > a for a, b in zip(schedule, schedule[1:]))
