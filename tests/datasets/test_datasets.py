"""Tests for the synthetic dataset generators and the registry."""

import pytest

from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_names,
    dataset_spec,
    load_all_datasets,
    load_dataset,
)
from repro.datasets.synthetic import GroupSpec, SyntheticDatasetSpec, generate_dataset
from repro.datasets.toy import toy_credit_table, toy_credit_udf
from repro.db.index import GroupIndex
from repro.experiments.tables import PAPER_TABLE2, PAPER_TABLE3
from repro.stats.summaries import pearson_correlation, summarize_series


class TestGroupSpec:
    def test_positive_count_rounding(self):
        assert GroupSpec(value="a", size=10, selectivity=0.25).positive_count == 2

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GroupSpec(value="a", size=-1, selectivity=0.5)
        with pytest.raises(ValueError):
            GroupSpec(value="a", size=1, selectivity=1.5)


class TestSyntheticSpec:
    def test_totals(self):
        spec = SyntheticDatasetSpec(
            name="mini",
            correlated_column="g",
            groups=(GroupSpec("a", 100, 0.8), GroupSpec("b", 300, 0.2)),
        )
        assert spec.total_size == 400
        assert spec.overall_selectivity == pytest.approx((80 + 60) / 400)

    def test_scaling_preserves_proportions(self):
        spec = dataset_spec("lending_club")
        scaled = spec.scaled(0.1)
        assert scaled.total_size == pytest.approx(spec.total_size * 0.1, rel=0.01)
        assert scaled.group_selectivities == spec.group_selectivities

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            dataset_spec("lending_club").scaled(0.0)

    def test_size_selectivity_correlation_sign(self):
        assert dataset_spec("lending_club").size_selectivity_correlation() > 0.5
        assert dataset_spec("marketing").size_selectivity_correlation() < -0.5


class TestGeneration:
    def test_generated_table_realises_spec_exactly(self):
        spec = SyntheticDatasetSpec(
            name="mini",
            correlated_column="g",
            groups=(GroupSpec("a", 200, 0.75), GroupSpec("b", 100, 0.2)),
        )
        bundle = generate_dataset(spec, random_state=0)
        index = GroupIndex(bundle.table, "g")
        labels = bundle.table.column_values(bundle.label_column, allow_hidden=True)
        assert index.group_size("a") == 200
        positives_a = sum(1 for row_id in index.row_ids("a") if labels[row_id])
        assert positives_a == 150
        positives_b = sum(1 for row_id in index.row_ids("b") if labels[row_id])
        assert positives_b == 20

    def test_generation_is_deterministic_given_seed(self):
        spec = dataset_spec("prosper").scaled(0.02)
        a = generate_dataset(spec, random_state=5)
        b = generate_dataset(spec, random_state=5)
        assert a.table.column_values("grade") == b.table.column_values("grade")

    def test_bundle_helpers(self, small_lending_club):
        bundle = small_lending_club
        truth = bundle.ground_truth_row_ids()
        assert len(truth) == pytest.approx(
            bundle.num_rows * bundle.overall_selectivity, abs=1
        )
        assert bundle.correlated_column in bundle.candidate_columns()
        assert "record_id" in bundle.table.schema.column_names

    def test_udf_reveals_hidden_label(self, small_lending_club):
        udf = small_lending_club.make_udf("reveal")
        truth = small_lending_club.ground_truth_row_ids()
        assert udf.evaluate_row(small_lending_club.table, next(iter(truth)))

    def test_label_column_is_hidden(self, small_lending_club):
        from repro.db.errors import ColumnNotFoundError

        with pytest.raises(ColumnNotFoundError):
            small_lending_club.table.column_values(small_lending_club.label_column)


class TestRegistry:
    def test_all_datasets_registered(self):
        assert set(dataset_names()) == set(DATASET_NAMES)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("nope")
        with pytest.raises(KeyError):
            dataset_spec("nope")

    def test_load_all(self):
        bundles = load_all_datasets(random_state=0, scale=0.01)
        assert set(bundles) == set(DATASET_NAMES)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_selectivity_matches_table2(self, name):
        spec = dataset_spec(name)
        assert spec.overall_selectivity == pytest.approx(
            PAPER_TABLE2[name]["selectivity"], abs=0.02
        )

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_group_structure_matches_table3(self, name):
        spec = dataset_spec(name)
        paper = PAPER_TABLE3[name]
        assert len(spec.groups) == paper["num_groups"]
        size_std = summarize_series(spec.group_sizes).std
        assert size_std == pytest.approx(paper["size_dev"], rel=0.25)
        selectivity_std = summarize_series(spec.group_selectivities).std
        assert selectivity_std == pytest.approx(paper["selectivity_dev"], abs=0.06)
        correlation = pearson_correlation(spec.group_sizes, spec.group_selectivities)
        # Sign and rough magnitude must match the paper.
        assert correlation * paper["correlation"] > 0
        assert abs(correlation - paper["correlation"]) < 0.35

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_row_counts_match_paper(self, name):
        expected = {
            "lending_club": 53_000,
            "prosper": 30_000,
            "census": 45_000,
            "marketing": 41_000,
        }[name]
        assert dataset_spec(name).total_size == expected


class TestToyExample:
    def test_table1_shape(self):
        table = toy_credit_table()
        assert table.num_rows == 12
        assert table.distinct("A") == [1, 2, 3]

    def test_table1_correct_tuples(self):
        table = toy_credit_table()
        labels = table.column_values("f", allow_hidden=True)
        correct = [i for i, value in enumerate(labels) if value]
        # Tuples 1-4, 6 and 12 in the paper's 1-based numbering.
        assert correct == [0, 1, 2, 3, 5, 11]

    def test_toy_udf(self):
        table = toy_credit_table()
        udf = toy_credit_udf()
        assert udf.evaluate_row(table, 0) is True
        assert udf.evaluate_row(table, 8) is False
