"""Property tests: durable persistence is invisible to query semantics.

For *any* sequence of appends — journalled, checkpointed at a random
point, or both — a table reopened from a :class:`TableStore` must be
indistinguishable from the never-persisted in-memory twin: identical cell
values, identical ``shard_signature()``, and bitwise-identical query
answers with identical work counters (the same contract
``test_incremental_ingest.py`` pins for the in-memory delta paths).
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import QueryConstraints
from repro.core.executor import BatchExecutor
from repro.core.pipeline import IntelSample
from repro.db.sharding import ShardedTable
from repro.db.storage import TableStore
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction

_VALUES = st.sampled_from(["a", "b", "c", "d", 1, 2, True])


@st.composite
def base_and_deltas(draw):
    base_n = draw(st.integers(min_value=1, max_value=25))
    deltas_n = draw(
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=3)
    )
    total = base_n + sum(deltas_n)
    values = draw(st.lists(_VALUES, min_size=total, max_size=total))
    labels = draw(st.lists(st.booleans(), min_size=total, max_size=total))
    cuts = [base_n]
    for n in deltas_n:
        cuts.append(cuts[-1] + n)
    checkpoint_after = draw(st.integers(min_value=0, max_value=len(deltas_n)))
    return values, labels, cuts, checkpoint_after


def _piece(values, labels, start, stop):
    return {"A": values[start:stop], "f": labels[start:stop]}


def _cells(table):
    return {
        name: table.column_values(name, allow_hidden=True)
        for name in table.schema.column_names
    }


def _run_query(table, tag):
    udf = UserDefinedFunction.from_label_column(f"dur_{tag}", "f")
    ledger = CostLedger()
    strategy = IntelSample(
        random_state=314,
        correlated_column="A",
        executor_factory=lambda rng: BatchExecutor(random_state=rng),
    )
    result = strategy.answer(
        table, udf, QueryConstraints(alpha=0.8, beta=0.8, rho=0.8), ledger
    )
    return (
        sorted(int(r) for r in result.row_ids),
        ledger.retrieved_count,
        ledger.evaluated_count,
        udf.counter_snapshot(),
    )


def _persist_twin(directory, sharded, values, labels, cuts, checkpoint_after):
    """Build (in-memory baseline, reopened-from-disk twin)."""
    piece = _piece(values, labels, 0, cuts[0])
    if sharded:
        baseline = ShardedTable.from_columns(
            "dur", piece, hidden_columns=["f"], shard_rows=7
        )
        persisted = ShardedTable.from_columns(
            "dur", piece, hidden_columns=["f"], shard_rows=7
        )
    else:
        baseline = Table.from_columns("dur", piece, hidden_columns=["f"])
        persisted = Table.from_columns("dur", piece, hidden_columns=["f"])
    store = TableStore(directory)
    store.save(persisted)
    for step, (start, stop) in enumerate(zip(cuts, cuts[1:]), start=1):
        delta = _piece(values, labels, start, stop)
        baseline.append_columns(delta)
        store.append(persisted, delta)
        if step == checkpoint_after:
            store.save(persisted)  # the rest of the deltas replay from the WAL
    loaded, report = store.open()
    assert not report.rebuilt_from_source
    return baseline, loaded


@settings(max_examples=40, deadline=None)
@given(base_and_deltas(), st.booleans())
def test_reopened_table_equals_in_memory_twin(data, sharded):
    values, labels, cuts, checkpoint_after = data
    with tempfile.TemporaryDirectory() as directory:
        baseline, loaded = _persist_twin(
            directory, sharded, values, labels, cuts, checkpoint_after
        )
        assert loaded.num_rows == baseline.num_rows
        assert loaded.data_generation == baseline.data_generation
        assert loaded.shard_signature() == baseline.shard_signature()
        assert _cells(loaded) == _cells(baseline)
        if sharded:
            assert tuple(loaded.shard_offsets) == tuple(baseline.shard_offsets)
        assert _run_query(loaded, "disk") == _run_query(baseline, "ram")


@settings(max_examples=20, deadline=None)
@given(base_and_deltas())
def test_reopen_is_idempotent(data):
    """Opening twice (journal replayed twice) converges to the same state."""
    values, labels, cuts, checkpoint_after = data
    with tempfile.TemporaryDirectory() as directory:
        _, first = _persist_twin(
            directory, False, values, labels, cuts, checkpoint_after
        )
        store = TableStore(directory)
        second, report = store.open()
        assert not report.rebuilt_from_source
        assert second.data_generation == first.data_generation
        assert _cells(second) == _cells(first)
