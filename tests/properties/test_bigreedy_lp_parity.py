"""BiGreedy / LP parity properties (PR 2's joint phase-2 repair).

The pre-PR-2 BiGreedy repaired precision deficits with evaluations only, so
on loose-recall problems it paid ``o_e`` for headroom the LP buys at ``o_r``
by retrieving extra high-selectivity tuples.  These properties pin the fix:
the greedy's expected cost must match :func:`solve_perfect_selectivity_lp`
to 1e-6 — on Theorem 3.8 problems and on the adversarial loose-recall cases
from the old ROADMAP open item — and the two solvers must agree on
infeasibility away from the feasibility boundary.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from model_strategies import selectivity_models

from repro.core.bigreedy import bigreedy_feasibility_conditions, solve_bigreedy
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.groups import SelectivityModel
from repro.core.hoeffding_lp import (
    compute_margins,
    precision_headroom,
    recall_target,
    solve_perfect_selectivity_lp,
)
from repro.solvers.linear import InfeasibleProblemError


def _solve_both(model, constraints, cost_model):
    try:
        greedy = solve_bigreedy(model, constraints, cost_model)
    except InfeasibleProblemError:
        greedy = None
    try:
        lp = solve_perfect_selectivity_lp(model, constraints, cost_model)
    except InfeasibleProblemError:
        lp = None
    return greedy, lp


def _assert_parity(model, constraints, cost_model=CostModel()):
    greedy, lp = _solve_both(model, constraints, cost_model)
    if greedy is None or lp is None:
        if (greedy is None) != (lp is None):
            # The solvers may only disagree within rounding distance of the
            # feasibility boundary (where scipy's tolerances decide).
            margins = compute_margins(model, constraints)
            target = recall_target(model, constraints, margins.recall_margin)
            achievable = sum(g.remaining * g.selectivity for g in model)
            headroom = precision_headroom(model, constraints)
            boundary = min(
                abs(achievable - target),
                abs(headroom.total - margins.precision_margin),
            )
            assert boundary <= 1e-6 * max(1.0, target, margins.precision_margin), (
                f"infeasibility disagreement away from the boundary: "
                f"greedy={'infeasible' if greedy is None else 'feasible'}, "
                f"lp={'infeasible' if lp is None else 'feasible'}"
            )
        return None, None
    assert greedy.expected_cost == pytest.approx(
        lp.expected_cost, rel=1e-6, abs=1e-6
    ), (
        f"BiGreedy cost {greedy.expected_cost} != LP optimum {lp.expected_cost} "
        f"under {constraints}"
    )
    return greedy, lp


class TestBiGreedyLpParity:
    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        data=st.data(),
        alpha=st.floats(min_value=0.0, max_value=0.99),
        beta=st.floats(min_value=0.0, max_value=0.99),
        rho=st.floats(min_value=0.5, max_value=0.95),
    )
    def test_bigreedy_matches_lp_cost(self, data, alpha, beta, rho):
        """Greedy cost == LP optimum to 1e-6, with or without Theorem 3.8.

        Theorem 3.8's pre-conditions guarantee the *paper's* two-phase
        greedy is optimal; the joint repair removes that caveat, so parity
        is asserted on every generated problem and the theorem's scope is
        only used to label the case in failure output.
        """
        model = data.draw(selectivity_models(min_groups=1, max_groups=7))
        constraints = QueryConstraints(alpha=alpha, beta=beta, rho=rho)
        _assert_parity(model, constraints)

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_bigreedy_matches_lp_on_theorem_38_problems(self, data):
        """Under Theorem 3.8's pre-conditions the paper already promises
        optimality; filtering to that regime keeps a dedicated gate on it."""
        model = data.draw(selectivity_models(min_groups=2, max_groups=6))
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)
        if not bigreedy_feasibility_conditions(model, constraints):
            return
        greedy, lp = _assert_parity(model, constraints)
        if greedy is not None:
            assert lp is not None

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        bulk_selectivity=st.floats(min_value=0.0, max_value=0.3),
        rich_selectivity=st.floats(min_value=0.85, max_value=1.0),
        beta=st.floats(min_value=0.05, max_value=0.35),
        evaluation_cost=st.floats(min_value=1.0, max_value=30.0),
    )
    def test_bigreedy_matches_lp_on_loose_recall_problems(
        self, bulk_selectivity, rich_selectivity, beta, evaluation_cost
    ):
        """The old ROADMAP gap: loose recall + a high-selectivity group.

        Phase 1 stops retrieving early (the recall target is loose), the
        precision deficit is large, and raising ``R_a`` on the
        high-selectivity group at ``o_r`` beats evaluating the bulk at
        ``o_e`` — exactly the family where the eval-only repair was up to
        ~``o_e/o_r`` times more expensive than the LP.
        """
        model = SelectivityModel.from_selectivities(
            sizes={"rich": 4000, "mid": 2500, "bulk": 4000},
            selectivities={
                "rich": rich_selectivity,
                "mid": 0.5,
                "bulk": bulk_selectivity,
            },
        )
        constraints = QueryConstraints(alpha=0.8, beta=beta, rho=0.8)
        cost_model = CostModel(retrieval_cost=1.0, evaluation_cost=evaluation_cost)
        _assert_parity(model, constraints, cost_model)

    def test_joint_repair_beats_eval_only_repair(self):
        """Concrete loose-recall instance from the ROADMAP note.

        The eval-only phase 2 (reconstructed inline) must cost strictly —
        here ~3x — more than the joint repair on a problem whose deficit is
        cheapest to close with extra high-selectivity retrievals.
        """
        model = SelectivityModel.from_selectivities(
            sizes={"rich": 4000, "bulk": 6000},
            selectivities={"rich": 0.95, "bulk": 0.05},
        )
        constraints = QueryConstraints(alpha=0.8, beta=0.1, rho=0.8)
        cost_model = CostModel(retrieval_cost=1.0, evaluation_cost=3.0)
        solution = solve_bigreedy(model, constraints, cost_model)
        eval_only = _eval_only_repair_cost(model, constraints, cost_model)
        assert solution.expected_cost < eval_only / 1.5
        lp = solve_perfect_selectivity_lp(model, constraints, cost_model)
        assert solution.expected_cost == pytest.approx(lp.expected_cost, rel=1e-6)


def _eval_only_repair_cost(model, constraints, cost_model):
    """Expected cost of the pre-PR-2 greedy: phase 2 raises ``E_a`` only."""
    margins = compute_margins(model, constraints)
    alpha = constraints.alpha
    target = recall_target(model, constraints, margins.recall_margin)
    retrieve = {group.key: 0.0 for group in model}
    evaluate = {group.key: 0.0 for group in model}
    achieved = 0.0
    for group in model.sorted_by_selectivity(descending=True):
        if achieved >= target:
            break
        capacity = group.remaining * group.selectivity
        if capacity <= 0.0:
            continue
        needed = target - achieved
        if capacity <= needed:
            retrieve[group.key] = 1.0
            achieved += capacity
        else:
            retrieve[group.key] = needed / capacity
            achieved = target
    deficit = margins.precision_margin - sum(
        group.remaining * (group.selectivity - alpha) * retrieve[group.key]
        for group in model
    )
    for group in model.sorted_by_selectivity(descending=False):
        if deficit <= 0.0:
            break
        room = retrieve[group.key] - evaluate[group.key]
        gain = group.remaining * (1.0 - group.selectivity) * alpha
        if room <= 0.0 or gain <= 0.0:
            continue
        take = min(room, deficit / gain)
        evaluate[group.key] += take
        deficit -= gain * take
    assert deficit <= 1e-7, "the reference eval-only repair must be feasible here"
    cost = 0.0
    for group in model:
        cost += group.remaining * (
            retrieve[group.key] * cost_model.retrieval_cost
            + evaluate[group.key] * cost_model.evaluation_cost
        )
    return cost
