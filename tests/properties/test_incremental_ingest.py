"""Property tests: the incremental-ingest path equals a from-scratch rebuild.

After *any* sequence of appends (random sizes, mixed-type values, appends
that seal and re-chunk the sharded tail), every delta-maintained structure
must be exactly what rebuilding from the concatenated data produces:

* :class:`~repro.db.index.GroupIndex` / ``MergedGroupIndex`` — value order,
  codes, per-group row-id arrays, label counts;
* :class:`~repro.sampling.sampler.SampleOutcome` delta merges and the
  :class:`~repro.core.groups.SelectivityModel` derived from them;
* end-to-end query results — returned row ids *and* ledger work counters —
  for the serial ``BatchExecutor`` and the sharded
  ``ParallelBatchExecutor`` alike.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.column_selection import LabeledSample
from repro.core.constraints import QueryConstraints
from repro.core.executor import BatchExecutor
from repro.core.groups import SelectivityModel
from repro.core.parallel import ParallelBatchExecutor
from repro.core.pipeline import IntelSample
from repro.db.sharding import ShardedTable
from repro.db.table import Table
from repro.db.udf import CostLedger, UserDefinedFunction
from repro.sampling.sampler import SampleOutcome

_VALUES = st.sampled_from(["a", "b", "c", "d", 1, 2, True])


@st.composite
def base_and_deltas(draw):
    """A random base column plus 1-3 random append deltas (labels included)."""
    base_n = draw(st.integers(min_value=1, max_value=25))
    deltas_n = draw(
        st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=3)
    )
    total = base_n + sum(deltas_n)
    values = draw(st.lists(_VALUES, min_size=total, max_size=total))
    labels = draw(st.lists(st.booleans(), min_size=total, max_size=total))
    cuts = [base_n]
    for n in deltas_n:
        cuts.append(cuts[-1] + n)
    return values, labels, cuts


def _piece(values, labels, start, stop):
    return {"A": values[start:stop], "f": labels[start:stop]}


def _assert_index_equal(got, reference):
    assert got.values == reference.values
    np.testing.assert_array_equal(got.codes, reference.codes)
    assert got.group_sizes() == reference.group_sizes()
    for value in reference.values:
        np.testing.assert_array_equal(got.row_ids(value), reference.row_ids(value))


@settings(max_examples=100, deadline=None)
@given(base_and_deltas())
def test_extended_group_index_equals_rebuild(data):
    values, labels, cuts = data
    table = Table.from_columns(
        "inc", _piece(values, labels, 0, cuts[0]), hidden_columns=["f"]
    )
    table.group_index("A")  # warm the cache so appends take the delta path
    for start, stop in zip(cuts, cuts[1:]):
        table.append_columns(_piece(values, labels, start, stop))
    fresh = Table.from_columns(
        "scratch", {"A": values, "f": labels}, hidden_columns=["f"]
    )
    _assert_index_equal(table.group_index("A"), fresh.group_index("A"))

    ids = list(range(0, len(values), 2))
    flags = [bool(i % 3) for i in ids]
    ref_totals, ref_positives = fresh.group_index("A").label_counts(ids, flags)
    got_totals, got_positives = table.group_index("A").label_counts(ids, flags)
    np.testing.assert_array_equal(ref_totals, got_totals)
    np.testing.assert_array_equal(ref_positives, got_positives)


@settings(max_examples=100, deadline=None)
@given(base_and_deltas(), st.integers(min_value=1, max_value=6))
def test_extended_merged_index_equals_rebuild(data, shard_rows):
    values, labels, cuts = data
    table = ShardedTable.from_columns(
        "inc",
        _piece(values, labels, 0, cuts[0]),
        hidden_columns=["f"],
        shard_rows=shard_rows,
    )
    table.group_index("A")
    for start, stop in zip(cuts, cuts[1:]):
        table.append_columns(_piece(values, labels, start, stop))
    fresh = Table.from_columns(
        "scratch", {"A": values, "f": labels}, hidden_columns=["f"]
    )
    merged = table.group_index("A")
    _assert_index_equal(merged, fresh.group_index("A"))
    # layout invariants: spans match the table, shards stay within the limit
    assert merged.span_boundaries() == table.shard_offsets
    assert sum(shard.num_rows for shard in table.shards) == table.num_rows
    assert all(
        shard.num_rows <= table.tail_shard_rows for shard in table.shards
    )
    # data accessors agree with the monolithic rebuild
    assert table.column_values("A") == values
    np.testing.assert_array_equal(
        table.column_array("A"), fresh.column_array("A")
    )


@settings(max_examples=60, deadline=None)
@given(base_and_deltas())
def test_delta_merged_outcome_and_model_equal_rebuild(data):
    values, labels, cuts = data
    table = Table.from_columns(
        "inc", _piece(values, labels, 0, cuts[0]), hidden_columns=["f"]
    )
    base_index = table.group_index("A")

    # evidence gathered at the base generation (every third row labelled)
    labeled = LabeledSample(
        outcomes={row_id: labels[row_id] for row_id in range(0, cuts[0], 3)}
    )
    outcome = labeled.to_sample_outcome(base_index)

    # appends arrive; the cached outcome is delta-merged per batch, treating
    # each delta's (unlabelled) rows as a shard of the logical table
    for start, stop in zip(cuts, cuts[1:]):
        table.append_columns(_piece(values, labels, start, stop))
        delta_index = Table.from_columns(
            "delta", _piece(values, labels, start, stop), hidden_columns=["f"]
        ).group_index("A")
        delta_outcome = LabeledSample().to_sample_outcome(delta_index)
        outcome = SampleOutcome.merge_shards(
            [outcome, delta_outcome],
            key_order=table.group_index("A").values,
        )

    fresh = Table.from_columns(
        "scratch", {"A": values, "f": labels}, hidden_columns=["f"]
    )
    fresh_index = fresh.group_index("A")
    whole = labeled.to_sample_outcome(fresh_index)
    assert set(outcome.samples) == set(whole.samples)
    for key, sample in whole.samples.items():
        merged = outcome.samples[key]
        assert merged.group_size == sample.group_size
        assert sorted(merged.sampled_row_ids) == sorted(sample.sampled_row_ids)
        assert sorted(merged.positive_row_ids) == sorted(sample.positive_row_ids)

    got_model = SelectivityModel.from_sample_outcome(table.group_index("A"), outcome)
    ref_model = SelectivityModel.from_sample_outcome(fresh_index, whole)
    assert got_model.keys == ref_model.keys
    for key in ref_model.keys:
        got, ref = got_model.group(key), ref_model.group(key)
        assert got.size == ref.size
        assert got.sampled == ref.sampled
        assert got.sampled_positives == ref.sampled_positives
        assert got.selectivity == ref.selectivity
        assert got.variance == ref.variance


def _run_query(table, tag, executor_factory):
    udf = UserDefinedFunction.from_label_column(f"inc_{tag}", "f")
    ledger = CostLedger()
    strategy = IntelSample(
        random_state=314,
        correlated_column="A",
        executor_factory=executor_factory,
    )
    result = strategy.answer(
        table,
        udf,
        QueryConstraints(alpha=0.8, beta=0.8, rho=0.8),
        ledger,
    )
    return (
        sorted(int(r) for r in result.row_ids),
        ledger.retrieved_count,
        ledger.evaluated_count,
    )


@settings(max_examples=25, deadline=None)
@given(base_and_deltas())
def test_query_results_identical_after_appends_serial_and_parallel(data):
    values, labels, cuts = data
    appended = Table.from_columns(
        "inc", _piece(values, labels, 0, cuts[0]), hidden_columns=["f"]
    )
    appended.group_index("A")
    for start, stop in zip(cuts, cuts[1:]):
        appended.append_columns(_piece(values, labels, start, stop))
    fresh = Table.from_columns(
        "inc", {"A": values, "f": labels}, hidden_columns=["f"]
    )

    serial = lambda rng: BatchExecutor(random_state=rng)  # noqa: E731
    assert _run_query(appended, "a", serial) == _run_query(fresh, "b", serial)

    sharded = ShardedTable.from_columns(
        "inc", _piece(values, labels, 0, cuts[0]), hidden_columns=["f"], shard_rows=7
    )
    sharded.group_index("A")
    for start, stop in zip(cuts, cuts[1:]):
        sharded.append_columns(_piece(values, labels, start, stop))
    fresh_sharded = ShardedTable.from_columns(
        "inc", {"A": values, "f": labels}, hidden_columns=["f"], shard_rows=7
    )
    parallel = lambda rng: ParallelBatchExecutor(rng, max_workers=2)  # noqa: E731
    assert _run_query(sharded, "c", parallel) == _run_query(
        fresh_sharded, "d", parallel
    )
