"""Shared hypothesis strategies for the property suites."""

from hypothesis import strategies as st

from repro.core.groups import SelectivityModel

group_sizes = st.integers(min_value=1, max_value=5000)
selectivities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def selectivity_models(draw, min_groups=1, max_groups=8):
    """A random perfect-selectivity model with ``min_groups..max_groups`` groups."""
    count = draw(st.integers(min_value=min_groups, max_value=max_groups))
    sizes = {i: draw(group_sizes) for i in range(count)}
    sels = {i: draw(selectivities) for i in range(count)}
    return SelectivityModel.from_selectivities(sizes, sels)
