"""Property-based tests (hypothesis) for the core invariants."""

import math

from hypothesis import HealthCheck, given, settings, strategies as st
from model_strategies import selectivity_models

from repro.core.bigreedy import solve_bigreedy
from repro.core.constraints import CostModel, QueryConstraints
from repro.core.hoeffding_lp import recall_target
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.solvers.knapsack import KnapsackItem, min_knapsack_dp, min_knapsack_greedy
from repro.solvers.linear import InfeasibleProblemError
from repro.stats.beta import BetaPosterior
from repro.stats.hoeffding import hoeffding_bound
from repro.stats.metrics import precision, recall, result_quality

# ---------------------------------------------------------------------------
# Strategies (selectivity_models is shared via model_strategies.py)
# ---------------------------------------------------------------------------
@st.composite
def plans_for(draw, model):
    decisions = {}
    for group in model:
        retrieve = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        evaluate = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)) * retrieve
        decisions[group.key] = GroupDecision(retrieve=retrieve, evaluate=evaluate)
    return ExecutionPlan(decisions)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetricsProperties:
    @given(
        returned=st.sets(st.integers(0, 200), max_size=60),
        correct=st.sets(st.integers(0, 200), max_size=60),
    )
    def test_precision_recall_bounded(self, returned, correct):
        assert 0.0 <= precision(returned, correct) <= 1.0
        assert 0.0 <= recall(returned, correct) <= 1.0

    @given(
        returned=st.sets(st.integers(0, 200), max_size=60),
        correct=st.sets(st.integers(0, 200), max_size=60),
    )
    def test_quality_consistent_with_counts(self, returned, correct):
        quality = result_quality(returned, correct)
        assert quality.true_positive_count <= quality.returned_count
        assert quality.true_positive_count <= quality.correct_count
        assert quality.f1 <= 1.0

    @given(items=st.sets(st.integers(0, 100), min_size=1, max_size=40))
    def test_perfect_result_has_perfect_metrics(self, items):
        assert precision(items, items) == 1.0
        assert recall(items, items) == 1.0


# ---------------------------------------------------------------------------
# Beta posterior
# ---------------------------------------------------------------------------
class TestBetaProperties:
    @given(positives=st.integers(0, 500), negatives=st.integers(0, 500))
    def test_mean_bounded_and_variance_positive(self, positives, negatives):
        posterior = BetaPosterior(positives, negatives)
        assert 0.0 < posterior.mean < 1.0
        assert posterior.variance > 0.0

    @given(positives=st.integers(0, 200), negatives=st.integers(0, 200),
           extra=st.integers(1, 50))
    def test_more_positives_never_decrease_mean(self, positives, negatives, extra):
        base = BetaPosterior(positives, negatives)
        richer = BetaPosterior(positives + extra, negatives)
        assert richer.mean >= base.mean

    @given(positives=st.integers(0, 200), negatives=st.integers(0, 200))
    def test_variance_never_grows_with_more_data(self, positives, negatives):
        base = BetaPosterior(positives, negatives)
        more = base.updated(positives + 1, negatives + 1)
        assert more.variance <= base.variance + 1e-12


# ---------------------------------------------------------------------------
# Hoeffding bound
# ---------------------------------------------------------------------------
class TestHoeffdingProperties:
    @given(
        total=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
        failure=st.floats(min_value=1e-6, max_value=1.0, exclude_max=False),
    )
    def test_margin_non_negative_and_monotone(self, total, failure):
        margin = hoeffding_bound(total, failure)
        assert margin >= 0.0
        assert hoeffding_bound(total, min(1.0, failure * 2)) <= margin + 1e-9


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------
class TestPlanProperties:
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_expectations_are_bounded(self, data):
        model = data.draw(selectivity_models())
        plan = data.draw(plans_for(model))
        cost_model = CostModel(1.0, 3.0)
        assert 0.0 <= plan.expected_retrievals(model) <= model.total_size
        assert 0.0 <= plan.expected_evaluations(model) <= plan.expected_retrievals(model) + 1e-9
        assert plan.expected_cost(model, cost_model, include_sampling=False) >= 0.0
        assert 0.0 <= plan.expected_precision(model) <= 1.0
        assert 0.0 <= plan.expected_recall(model) <= 1.0 + 1e-9

    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_evaluate_everything_dominates_recall(self, data):
        model = data.draw(selectivity_models())
        plan = data.draw(plans_for(model))
        full = ExecutionPlan.evaluate_everything(model.keys)
        assert full.expected_recall(model) >= plan.expected_recall(model) - 1e-9


# ---------------------------------------------------------------------------
# BiGreedy
# ---------------------------------------------------------------------------
class TestBiGreedyProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(
        data=st.data(),
        alpha=st.floats(min_value=0.0, max_value=0.95),
        beta=st.floats(min_value=0.0, max_value=0.95),
    )
    def test_solution_is_feasible_for_the_margined_lp(self, data, alpha, beta):
        model = data.draw(selectivity_models(min_groups=2, max_groups=6))
        constraints = QueryConstraints(alpha=alpha, beta=beta, rho=0.8)
        try:
            solution = solve_bigreedy(model, constraints)
        except InfeasibleProblemError:
            return  # nothing to check: the margined LP genuinely has no solution
        plan = solution.plan
        # Probabilities are valid.
        for key, decision in plan:
            assert 0.0 <= decision.evaluate_probability <= decision.retrieve_probability <= 1.0
        # Recall constraint with margin holds.
        achieved = sum(
            group.remaining * group.selectivity * plan.decision(group.key).retrieve_probability
            for group in model
        )
        target = recall_target(model, constraints, solution.margins.recall_margin)
        assert achieved >= target - 1e-6
        # Precision constraint with margin holds (when applicable).
        if 0.0 < alpha < 1.0:
            lhs = 0.0
            for group in model:
                decision = plan.decision(group.key)
                lhs += group.remaining * group.selectivity * (1 - alpha) * decision.retrieve_probability
                lhs -= group.remaining * (1 - group.selectivity) * alpha * (
                    decision.retrieve_probability - decision.evaluate_probability
                )
            assert lhs >= solution.margins.precision_margin - 1e-6

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_cost_monotone_in_beta(self, data):
        """A tighter recall bound can never make the optimal plan cheaper.

        Restored to its original, unscoped form in PR 2: BiGreedy's phase 2
        now repairs precision deficits jointly (evaluations at ``o_e``
        versus extra high-selectivity retrievals at ``o_r``) and attains the
        LP optimum, whose cost is monotone in the margined recall target —
        whenever both problems are feasible the targets are nested, because
        feasibility itself pins ``sum t_a s_a`` above the margin scale.
        """
        model = data.draw(selectivity_models(min_groups=2, max_groups=6))
        try:
            loose = solve_bigreedy(model, QueryConstraints(0.5, 0.3, 0.8))
            tight = solve_bigreedy(model, QueryConstraints(0.5, 0.8, 0.8))
        except InfeasibleProblemError:
            return
        assert tight.expected_cost >= loose.expected_cost - 1e-6


# ---------------------------------------------------------------------------
# Knapsack
# ---------------------------------------------------------------------------
class TestKnapsackProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(
        weights=st.lists(st.integers(1, 30), min_size=1, max_size=8),
        values=st.lists(st.integers(0, 30), min_size=1, max_size=8),
        target_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_dp_never_worse_than_greedy(self, weights, values, target_fraction):
        count = min(len(weights), len(values))
        items = [
            KnapsackItem(identifier=i, weight=weights[i], value=values[i])
            for i in range(count)
        ]
        total_value = sum(item.value for item in items)
        target = math.floor(total_value * target_fraction)
        chosen_dp, weight_dp = min_knapsack_dp(items, target)
        chosen_greedy, weight_greedy = min_knapsack_greedy(items, target)
        assert sum(item.value for item in chosen_dp) >= target - 1e-9
        assert sum(item.value for item in chosen_greedy) >= target - 1e-9
        assert weight_dp <= weight_greedy + 1e-9
