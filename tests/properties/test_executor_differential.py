"""Differential tests: vectorised defaults versus the reference paths.

Two promises this suite pins down:

* the promoted default :class:`~repro.core.executor.BatchExecutor` is
  *seed-for-seed identical* to the paper-faithful tuple-at-a-time
  :class:`~repro.core.executor.PlanExecutor` — same returned row ids (and
  order), same ledger counts, same per-group R+/R-/E+/E- bookkeeping — for
  arbitrary plans, with and without sampled-tuple handling, across the
  registry datasets;
* the factorised :class:`~repro.db.index.GroupIndex` produces exactly the
  grouping of the dict-based reference :meth:`Table.group_row_ids` (keys,
  key order, row ids, row order), including its per-row codes.

These guarantees are what make it safe to run the whole library — pipeline,
oracle, adaptive strategy, serving layer — on the vectorised backend while
citing the serial executor's semantics.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.constraints import QueryConstraints
from repro.core.executor import BatchExecutor, PlanExecutor
from repro.core.pipeline import IntelSample
from repro.core.plan import ExecutionPlan, GroupDecision
from repro.datasets.registry import load_dataset
from repro.db.index import GroupIndex
from repro.db.udf import CostLedger
from repro.sampling.sampler import GroupSampler
from repro.sampling.schemes import ConstantScheme

DATASETS = ("lending_club", "census", "marketing")


def _dataset(name):
    return load_dataset(name, random_state=17, scale=0.02)


def _run_both(dataset, plan, seed, outcome=None):
    index = dataset.table.group_index(dataset.correlated_column)
    serial_udf = dataset.make_udf("serial")
    serial_ledger = CostLedger()
    serial = PlanExecutor(random_state=seed).execute(
        dataset.table, index, serial_udf, plan, serial_ledger, sample_outcome=outcome
    )
    batch_udf = dataset.make_udf("batch")
    batch_ledger = CostLedger()
    batch = BatchExecutor(random_state=seed).execute(
        dataset.table, index, batch_udf, plan, batch_ledger, sample_outcome=outcome
    )
    return serial, serial_ledger, batch, batch_ledger


def _assert_identical(serial, serial_ledger, batch, batch_ledger):
    assert batch.returned_row_ids == serial.returned_row_ids
    assert batch_ledger.retrieved_count == serial_ledger.retrieved_count
    assert batch_ledger.evaluated_count == serial_ledger.evaluated_count
    assert batch.group_counts.keys() == serial.group_counts.keys()
    for key, serial_counts in serial.group_counts.items():
        assert batch.group_counts[key] == serial_counts, key


class TestExecutorSeedForSeed:
    @pytest.mark.parametrize("dataset_name", DATASETS)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_random_plans_match(self, dataset_name, data):
        dataset = _dataset(dataset_name)
        index = dataset.table.group_index(dataset.correlated_column)
        decisions = {}
        for key in index.values:
            retrieve = data.draw(
                st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]), label=f"retrieve[{key}]"
            )
            evaluate = (
                data.draw(
                    st.sampled_from([0.0, 0.3, 0.7, 1.0]), label=f"evaluate[{key}]"
                )
                * retrieve
            )
            decisions[key] = GroupDecision(retrieve=retrieve, evaluate=evaluate)
        plan = ExecutionPlan(decisions)
        seed = data.draw(st.integers(0, 2**20), label="seed")
        _assert_identical(*_run_both(dataset, plan, seed))

    @pytest.mark.parametrize("dataset_name", DATASETS)
    def test_with_sampled_tuples(self, dataset_name):
        dataset = _dataset(dataset_name)
        index = dataset.table.group_index(dataset.correlated_column)
        sampler_udf = dataset.make_udf("sampler")
        outcome = GroupSampler(random_state=5).sample(
            dataset.table,
            index,
            sampler_udf,
            ConstantScheme(4).allocate(index.group_sizes()),
            CostLedger(),
        )
        plan = ExecutionPlan(
            {key: GroupDecision(retrieve=0.6, evaluate=0.3) for key in index.values}
        )
        for seed in range(5):
            _assert_identical(*_run_both(dataset, plan, seed, outcome=outcome))

    @pytest.mark.parametrize("dataset_name", DATASETS)
    def test_full_pipeline_matches_across_backends(self, dataset_name):
        """IntelSample returns identical results on either backend."""
        dataset = _dataset(dataset_name)
        constraints = QueryConstraints(alpha=0.8, beta=0.8, rho=0.8)

        def run(factory):
            return IntelSample(random_state=99, executor_factory=factory).answer(
                dataset.table,
                dataset.make_udf("pipe"),
                constraints,
                CostLedger(),
                correlated_column=dataset.correlated_column,
            )

        batch = run(None)  # the default is BatchExecutor
        serial = run(lambda rng: PlanExecutor(random_state=rng))
        assert batch.row_ids == serial.row_ids
        assert batch.ledger.evaluated_count == serial.ledger.evaluated_count
        assert batch.ledger.retrieved_count == serial.ledger.retrieved_count


class TestGroupIndexDifferential:
    @pytest.mark.parametrize("dataset_name", DATASETS)
    def test_vectorised_grouping_equals_dict_reference(self, dataset_name):
        dataset = _dataset(dataset_name)
        table = dataset.table
        for column in table.schema.categorical_columns():
            index = GroupIndex(table, column.name)
            reference = table.group_row_ids(column.name)
            assert index.values == list(reference.keys())
            for value, expected_rows in reference.items():
                assert index.row_ids(value).tolist() == expected_rows
                assert index.group_size(value) == len(expected_rows)
            # Codes invert the grouping exactly.
            keys = index.values
            column_values = table.column_values(column.name)
            assert [keys[c] for c in index.codes.tolist()] == column_values

    def test_nan_cells_match_dict_reference(self):
        """np.unique collapses NaNs; the index must follow dict semantics."""
        import math

        from repro.db.table import Table

        nan = float("nan")
        table = Table.from_columns(
            "nantest",
            {"x": [1.0, nan, 2.0, nan, 1.0]},
            column_types={"x": "categorical"},
        )
        index = GroupIndex(table, "x")
        reference = table.group_row_ids("x")
        assert index.num_groups == len(reference)
        for (key, rows), (ref_key, ref_rows) in zip(index.items(), reference.items()):
            assert key == ref_key or (math.isnan(key) and math.isnan(ref_key))
            assert rows.tolist() == ref_rows

    @given(
        values=st.lists(
            st.sampled_from(["a", "b", "c", "d", 1, 2, True]), min_size=1, max_size=60
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_factorisation_property(self, values):
        """Arbitrary (even mixed-type) columns factorise like the dict path."""
        from repro.db.table import Table

        table = Table.from_columns(
            "prop", {"x": values}, column_types={"x": "categorical"}
        )
        index = GroupIndex(table, "x")
        reference = table.group_row_ids("x")
        assert index.values == list(reference.keys())
        for value, expected_rows in reference.items():
            assert index.row_ids(value).tolist() == expected_rows
        assert index.total_rows() == len(values)
        sizes = index.size_array()
        assert int(np.sum(sizes)) == len(values)
