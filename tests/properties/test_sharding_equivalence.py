"""Property tests: sharded structures are *exactly* their unsharded equivalents.

Three pins, each across random tables and random shard layouts (including the
1-shard and one-row-per-shard edge cases):

* :class:`~repro.db.index.MergedGroupIndex` equals the monolithic
  :class:`~repro.db.index.GroupIndex` — values order, codes, per-group row-id
  arrays, label counts;
* per-shard :class:`~repro.sampling.sampler.SampleOutcome` objects merged via
  ``merge_shards`` equal the whole-table outcome built from the same labelled
  rows;
* per-shard :class:`~repro.core.groups.SelectivityModel` objects merged via
  ``merge_shards`` equal the model built from the merged evidence — same
  keys, sizes, counts, and bit-equal selectivity/variance estimates.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.column_selection import LabeledSample
from repro.core.groups import SelectivityModel
from repro.db.sharding import ShardedTable
from repro.db.table import Table
from repro.sampling.sampler import SampleOutcome


@st.composite
def table_and_layout(draw):
    """A random categorical table plus a random contiguous shard layout."""
    n = draw(st.integers(min_value=1, max_value=40))
    values = draw(
        st.lists(
            st.sampled_from(["a", "b", "c", "d", 1, 2, True]),
            min_size=n,
            max_size=n,
        )
    )
    labels = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    # Random cut points; always includes the 1-shard (no cuts) and the
    # n-shards (every point cut) cases in the search space.
    cuts = draw(st.sets(st.integers(min_value=1, max_value=max(1, n - 1))))
    bounds = (0, *sorted(c for c in cuts if c < n), n)
    return values, labels, bounds


def _build(values, labels, bounds):
    columns = {"A": values, "f": labels}
    plain = Table.from_columns("prop", columns, hidden_columns=["f"])
    shards = [
        Table(
            name=f"prop#shard{i}",
            schema=plain.schema,
            columns={"A": values[start:stop], "f": labels[start:stop]},
        )
        for i, (start, stop) in enumerate(zip(bounds, bounds[1:]))
    ]
    sharded = ShardedTable(name="prop", schema=plain.schema, shards=shards)
    return plain, sharded


@settings(max_examples=120, deadline=None)
@given(table_and_layout())
def test_merged_index_equals_unsharded(data):
    values, labels, bounds = data
    plain, sharded = _build(values, labels, bounds)
    reference = plain.group_index("A")
    merged = sharded.group_index("A")

    assert merged.values == reference.values
    assert np.array_equal(merged.codes, reference.codes)
    assert merged.group_sizes() == reference.group_sizes()
    for value in reference.values:
        assert np.array_equal(merged.row_ids(value), reference.row_ids(value))

    ids = list(range(0, len(values), 2))
    flags = [bool(i % 3) for i in ids]
    ref_totals, ref_positives = reference.label_counts(ids, flags)
    got_totals, got_positives = merged.label_counts(ids, flags)
    assert np.array_equal(ref_totals, got_totals)
    assert np.array_equal(ref_positives, got_positives)


def _per_shard_outcomes(plain, sharded, labeled):
    """One SampleOutcome per shard, in global row-id space."""
    outcomes = []
    for shard, (start, stop) in zip(sharded.shards, sharded.shard_spans()):
        local_index = shard.group_index("A")
        shard_labeled = LabeledSample(
            outcomes={
                row_id - start: outcome
                for row_id, outcome in labeled.outcomes.items()
                if start <= row_id < stop
            }
        )
        local = shard_labeled.to_sample_outcome(local_index)
        # shift local row ids back into global space
        for sample in local.samples.values():
            sample.sampled_row_ids = [r + start for r in sample.sampled_row_ids]
            sample.positive_row_ids = [r + start for r in sample.positive_row_ids]
        outcomes.append(local)
    return outcomes


@settings(max_examples=120, deadline=None)
@given(table_and_layout())
def test_shard_merged_outcome_and_model_equal_unsharded(data):
    values, labels, bounds = data
    plain, sharded = _build(values, labels, bounds)
    reference_index = plain.group_index("A")

    # label every third row — the shared evidence both paths must agree on
    labeled = LabeledSample(
        outcomes={row_id: labels[row_id] for row_id in range(0, len(values), 3)}
    )
    whole = labeled.to_sample_outcome(reference_index)
    merged = SampleOutcome.merge_shards(
        _per_shard_outcomes(plain, sharded, labeled),
        key_order=reference_index.values,
    )

    assert set(merged.samples) == set(whole.samples)
    for key, sample in whole.samples.items():
        other = merged.samples[key]
        assert other.group_size == sample.group_size
        assert sorted(other.sampled_row_ids) == sorted(sample.sampled_row_ids)
        assert sorted(other.positive_row_ids) == sorted(sample.positive_row_ids)

    reference_model = SelectivityModel.from_sample_outcome(reference_index, whole)
    shard_models = [
        SelectivityModel.from_sample_outcome(
            shard.group_index("A"), outcome_shifted
        )
        for shard, outcome_shifted in zip(
            sharded.shards, _per_shard_outcomes(plain, sharded, labeled)
        )
        if shard.num_rows
    ]
    merged_model = SelectivityModel.merge_shards(shard_models)

    assert merged_model.keys == reference_model.keys
    for key in reference_model.keys:
        expected = reference_model.group(key)
        got = merged_model.group(key)
        assert got.size == expected.size
        assert got.sampled == expected.sampled
        assert got.sampled_positives == expected.sampled_positives
        # bit-equal estimates: both are the Beta posterior of the same counts
        assert got.selectivity == expected.selectivity
        assert got.variance == expected.variance
